"""Tests for the deployment access layer (restricted server, identity,
portal) and index composition (graft / prune / validate)."""

from __future__ import annotations

import pytest

from repro.core.build import BuildOptions, dir2index
from repro.core.compose import (
    CompositionError,
    graft,
    prune,
    validate,
)
from repro.core.index import GUFIIndex
from repro.core.query import GUFIQuery, Q1_LIST_PATHS, QuerySpec
from repro.core.rollup import rollup
from repro.core.server import (
    AuthenticationError,
    GUFIServer,
    IdentityProvider,
    QueryPortal,
    ToolNotAllowed,
)
from repro.fs.tree import VFSTree
from repro.gen.datasets import linux_kernel_tree
from tests.conftest import NTHREADS, build_demo_tree


@pytest.fixture
def identity():
    idp = IdentityProvider()
    idp.add_user("alice", uid=1001, gid=1001)
    idp.add_user("bob", uid=1002, gid=1002)
    idp.add_user("carol", uid=1003, gid=1003, groups=frozenset({100}))
    idp.add_user("root", uid=0, gid=0)
    return idp


@pytest.fixture
def server(demo_index, identity):
    return GUFIServer(demo_index, identity, nthreads=NTHREADS)


class TestIdentityProvider:
    def test_authenticate(self, identity):
        creds = identity.authenticate("carol")
        assert creds.uid == 1003 and creds.in_group(100)

    def test_unknown_user(self, identity):
        with pytest.raises(AuthenticationError):
            identity.authenticate("mallory")

    def test_disable_enable(self, identity):
        identity.disable("bob")
        with pytest.raises(AuthenticationError):
            identity.authenticate("bob")
        identity.enable("bob")
        assert identity.authenticate("bob").uid == 1002

    def test_uid_map(self, identity):
        assert identity.uid_map()[1001] == "alice"


class TestGUFIServer:
    def test_whitelist(self, server):
        with pytest.raises(ToolNotAllowed):
            server.invoke("alice", "rm -rf")
        with pytest.raises(ToolNotAllowed):
            server.invoke("alice", "rollup")  # admin op, not remote-safe

    def test_invocation_runs_as_caller(self, server):
        r_alice = server.invoke(
            "alice", "query", spec=Q1_LIST_PATHS
        )
        r_bob = server.invoke("bob", "query", spec=Q1_LIST_PATHS)
        alice_paths = {r[0] for r in r_alice.rows}
        bob_paths = {r[0] for r in r_bob.rows}
        assert "/home/alice/a.txt" in alice_paths
        assert "/home/alice/a.txt" not in bob_paths

    def test_revocation_is_immediate(self, server, identity):
        server.invoke("bob", "du")
        identity.disable("bob")
        with pytest.raises(AuthenticationError):
            server.invoke("bob", "du")

    def test_group_change_is_immediate(self, server, identity):
        n_before = len(
            server.invoke("bob", "query", spec=Q1_LIST_PATHS).rows
        )
        identity.set_groups("bob", frozenset({100}))  # joins the project
        n_after = len(
            server.invoke("bob", "query", spec=Q1_LIST_PATHS).rows
        )
        assert n_after > n_before  # /proj/shared now visible

    def test_audit_log(self, server):
        server.invoke("alice", "du")
        with pytest.raises(ToolNotAllowed):
            server.invoke("alice", "chmod")
        assert len(server.audit_log) == 2
        assert server.audit_log[0].ok and not server.audit_log[1].ok
        assert server.audit_log[1].tool == "chmod"

    def test_tools_passthrough(self, server):
        assert server.invoke("root", "du") > 0
        top = server.invoke("root", "largest_files", limit=2)
        assert len(top) == 2


class TestQueryPortal:
    def test_pregenerated_queries(self, server):
        portal = QueryPortal(server)
        top = portal.my_largest_files("alice", limit=3)
        sizes = [s for _, s in top]
        assert sizes == sorted(sizes, reverse=True) and len(top) == 3
        # only alice-visible paths appear
        assert not any("secret" in p for p, _ in top)
        recent = portal.my_recent_files("bob", limit=5)
        assert recent
        assert portal.my_space_usage("alice") == 100 + 250 + 700
        stale = portal.my_stale_data("alice", older_than=10**9)
        assert all(row[1] == "f" for row in stale.rows)


class TestGraftPrune:
    def test_graft_new_filesystem(self, tmp_path):
        """Index a second file system and graft it under the unified
        search root."""
        main = dir2index(
            build_demo_tree(), tmp_path / "main",
            opts=BuildOptions(nthreads=NTHREADS),
        ).index
        kernel_ns = linux_kernel_tree(scale=0.01)
        kernel = dir2index(
            kernel_ns.tree, tmp_path / "kernel",
            opts=BuildOptions(nthreads=NTHREADS),
        ).index
        graft(main, kernel, src_subtree="/linux", at="/fs-kernel/linux")
        q = GUFIQuery(main, nthreads=NTHREADS)
        rows = [r[0] for r in q.run(Q1_LIST_PATHS, start="/fs-kernel").rows]
        assert rows and all(r.startswith("/fs-kernel/linux") for r in rows)
        # old content still present
        all_rows = [r[0] for r in q.run(Q1_LIST_PATHS).rows]
        assert "/home/bob/b.txt" in all_rows

    def test_graft_refuses_overwrite(self, tmp_path):
        main = dir2index(
            build_demo_tree(), tmp_path / "main",
            opts=BuildOptions(nthreads=NTHREADS),
        ).index
        other = dir2index(
            build_demo_tree(), tmp_path / "other",
            opts=BuildOptions(nthreads=NTHREADS),
        ).index
        with pytest.raises(CompositionError):
            graft(main, other, src_subtree="/home", at="/home")
        graft(main, other, src_subtree="/home", at="/home", overwrite=True)

    def test_graft_unrolls_destination_path(self, tmp_path):
        main = dir2index(
            build_demo_tree(), tmp_path / "main",
            opts=BuildOptions(nthreads=NTHREADS),
        ).index
        rollup(main, nthreads=NTHREADS)
        other = dir2index(
            build_demo_tree(), tmp_path / "other",
            opts=BuildOptions(nthreads=NTHREADS),
        ).index
        q = GUFIQuery(main, nthreads=NTHREADS)
        before = len(q.run(Q1_LIST_PATHS).rows)
        unrolled = graft(
            main, other, src_subtree="/home/alice", at="/home/imported"
        )
        # /home was (potentially) rolled; the graft path must be clean
        assert not main.dir_meta("/home").rolledup
        after = q.run(Q1_LIST_PATHS).rows
        assert len(after) == before + 2  # alice's two files, re-rooted
        assert any(r[0] == "/home/imported/a.txt" for r in after)
        assert isinstance(unrolled, list)

    def test_prune(self, tmp_path):
        main = dir2index(
            build_demo_tree(), tmp_path / "main",
            opts=BuildOptions(nthreads=NTHREADS),
        ).index
        rollup(main, nthreads=NTHREADS)
        prune(main, "/proj")
        q = GUFIQuery(main, nthreads=NTHREADS)
        rows = [r[0] for r in q.run(Q1_LIST_PATHS).rows]
        assert not any(r.startswith("/proj") for r in rows)
        assert "/home/bob/b.txt" in rows

    def test_prune_root_refused(self, demo_index):
        with pytest.raises(CompositionError):
            prune(demo_index, "/")

    def test_prune_missing_refused(self, demo_index):
        with pytest.raises(CompositionError):
            prune(demo_index, "/nothing/here")


class TestValidate:
    def test_clean_index_validates(self, demo_index):
        report = validate(demo_index)
        assert report.ok
        assert report.dirs_checked == demo_index.count_dbs()

    def test_validates_after_rollup(self, demo_index):
        rollup(demo_index, nthreads=NTHREADS)
        assert validate(demo_index).ok

    def test_detects_missing_db(self, demo_index):
        (demo_index.index_dir("/home/bob") / "db.db").unlink()
        report = validate(demo_index)
        assert not report.ok
        assert any("missing db.db" in p for p in report.problems)

    def test_detects_inconsistent_rollup_flag(self, demo_index):
        from repro.core import db as dbmod

        conn = dbmod.open_rw(demo_index.db_path("/home/alice"))
        conn.execute("UPDATE summary SET rolledup = 1 WHERE isroot = 1")
        conn.close()
        report = validate(demo_index)
        assert any("pentries is a view" in p for p in report.problems)

    def test_detects_missing_side_db(self, tmp_path):
        t = VFSTree()
        t.mkdir("/d", mode=0o750, uid=1001, gid=1001)
        t.create_file("/d/f", mode=0o600, uid=1002, gid=1002)
        t.setxattr("/d/f", "user.x", b"1")
        idx = dir2index(t, tmp_path / "i",
                        opts=BuildOptions(nthreads=NTHREADS)).index
        (idx.index_dir("/d") / "xattrs.db.u1002").unlink()
        report = validate(idx)
        assert any("xattrs.db.u1002 missing" in p for p in report.problems)


class TestServerClose:
    def test_close_unbinds_result_cache_listeners(self, demo_index, identity):
        """Regression: ``GUFIServer.close()`` used to dispose sessions
        but leak the shared result cache's DirMeta-cache listener
        subscriptions — every closed server left a dangling hook on
        the index."""
        srv = GUFIServer(
            demo_index, identity, nthreads=NTHREADS, result_cache_mb=4.0
        )
        srv.invoke("alice", "query", spec=Q1_LIST_PATHS)  # binds the cache
        assert demo_index.cache._listeners, "cache never bound"
        assert srv.result_cache is not None
        srv.close()
        assert demo_index.cache._listeners == []
        assert srv.result_cache._bound == []

    def test_close_is_idempotent(self, demo_index, identity):
        srv = GUFIServer(
            demo_index, identity, nthreads=NTHREADS, result_cache_mb=4.0
        )
        srv.invoke("alice", "du")
        srv.close()
        srv.close()
        assert demo_index.cache._listeners == []


class TestXattrSearchConvention:
    @pytest.fixture
    def xattr_server(self, xattr_namespace):
        _, _, _, index = xattr_namespace
        idp = IdentityProvider()
        idp.add_user("root", uid=0, gid=0)
        with GUFIServer(index, idp, nthreads=NTHREADS) as srv:
            yield srv

    def test_keyword_form(self, xattr_server, xattr_namespace):
        """``needle=`` is the supported form: the positional slot is
        the query root, like every other tool."""
        _, _, needle, _ = xattr_namespace
        result = xattr_server.invoke(
            "root", "xattr_search", "/", needle="needle"
        )
        assert any(needle == r[0] for r in result.rows)

    def test_positional_form_deprecated_but_works(
        self, xattr_server, xattr_namespace
    ):
        """The historical convention smuggled the needle through the
        ``start`` slot; it still works but warns."""
        _, _, needle, _ = xattr_namespace
        with pytest.warns(DeprecationWarning, match="positional start"):
            legacy = xattr_server.invoke("root", "xattr_search", "needle")
        modern = xattr_server.invoke(
            "root", "xattr_search", "/", needle="needle"
        )
        assert {r[0] for r in legacy.rows} == {r[0] for r in modern.rows}
        assert any(needle == r[0] for r in legacy.rows)
