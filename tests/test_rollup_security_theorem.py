"""The rollup security theorem, tested directly.

Rollup moves child data into the parent's database, which is protected
by the *parent's* permissions. The §III-C3 conditions are safe iff:

    for every rolled-up directory D and every merged descendant S,
    any credential that can read D's database could also have read
    S's database through the original hierarchy.

The property tests in test_properties.py verify this end-to-end
through the query engine; here we verify the *conditions themselves*,
exhaustively and structurally:

* an exhaustive scan over permission-bit combinations confirms the
  four conditions never admit a visibility-widening pair;
* generated indexes are audited after rollup: for each rolled dir, we
  enumerate merged descendants from the copied summary rows and check
  the reader-set inclusion directly, without the engine in the loop.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import db as dbmod
from repro.core.build import BuildOptions, dir2index
from repro.core.rollup import rollup, rollup_compatible
from repro.fs.permissions import Credentials, can_read_dir, can_search_dir
from repro.fs.tree import VFSTree
from repro.gen.datasets import dataset2, table1_namespace
from tests.conftest import NTHREADS

# a reader population covering owner / group / other / multi-group
UIDS = (10, 11)
GIDS = (20, 21)
READERS = [
    Credentials(uid=10, gid=20),
    Credentials(uid=10, gid=21),
    Credentials(uid=11, gid=20),
    Credentials(uid=11, gid=21),
    Credentials(uid=12, gid=22),  # stranger
    Credentials(uid=12, gid=22, groups=frozenset({20, 21})),
]


def readers_of(mode: int, uid: int, gid: int) -> frozenset[int]:
    """Indices of READERS that can read+search a dir with these bits
    (i.e. could process its database)."""
    return frozenset(
        i
        for i, c in enumerate(READERS)
        if can_read_dir(mode, uid, gid, c) and can_search_dir(mode, uid, gid, c)
    )


MODES = [
    0o000, 0o400, 0o500, 0o600, 0o700, 0o750, 0o755, 0o711, 0o770,
    0o775, 0o777, 0o550, 0o555, 0o440, 0o444, 0o705, 0o650, 0o2770,
]


class TestConditionsNeverWiden:
    def test_exhaustive_pairs(self):
        """Every (parent, child) permission pair the conditions accept
        satisfies: readers(parent) ⊆ readers(child). (Merging child
        data under the parent's protection can only be safe if nobody
        gains access they lacked on the child.)"""
        widened = []
        for p_mode, c_mode in itertools.product(MODES, MODES):
            for p_uid, c_uid in itertools.product(UIDS, UIDS):
                for p_gid, c_gid in itertools.product(GIDS, GIDS):
                    if not rollup_compatible(
                        p_mode, p_uid, p_gid, c_mode, c_uid, c_gid
                    ):
                        continue
                    rp = readers_of(p_mode, p_uid, p_gid)
                    rc = readers_of(c_mode, c_uid, c_gid)
                    if not rp <= rc:
                        widened.append(
                            (oct(p_mode), p_uid, p_gid,
                             oct(c_mode), c_uid, c_gid, rp - rc)
                        )
        assert not widened, f"visibility-widening pairs admitted: {widened[:5]}"

    def test_conditions_not_vacuous(self):
        """Sanity: the conditions do accept a meaningful fraction of
        same-owner pairs (they are not 'never roll')."""
        accepted = sum(
            1
            for p_mode, c_mode in itertools.product(MODES, MODES)
            if rollup_compatible(p_mode, 10, 20, c_mode, 10, 20)
        )
        assert accepted > len(MODES)  # diagonal at minimum


def audit_rolled_index(index, tree) -> list[str]:
    """Structural audit: for every rolled directory, every merged
    descendant's original permissions must admit every reader of the
    rolled database."""
    violations = []
    for d in index.iter_index_dirs():
        sp = index.source_path(d)
        meta = index.dir_meta(sp)
        if not meta.rolledup:
            continue
        parent_readers = readers_of(meta.mode, meta.uid, meta.gid)
        conn = dbmod.open_ro(d / "db.db")
        try:
            rows = conn.execute(
                "SELECT name, mode, uid, gid FROM summary "
                "WHERE isroot = 0 AND rectype = 0"
            ).fetchall()
        finally:
            conn.close()
        for name, mode, uid, gid in rows:
            child_readers = readers_of(mode, uid, gid)
            if not parent_readers <= child_readers:
                violations.append(f"{sp} absorbed {name}")
    return violations


class TestRolledIndexesAudit:
    @pytest.mark.parametrize("maker", [
        lambda: dataset2(scale=0.0001, seed=1).tree,
        lambda: dataset2(scale=0.0001, seed=2).tree,
        lambda: table1_namespace("/proj", scale=3e-5).tree,
        lambda: table1_namespace("/users", scale=3e-5).tree,
    ])
    def test_no_rolled_dir_widens_visibility(self, maker, tmp_path):
        tree = maker()
        idx = dir2index(
            tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
        ).index
        rollup(idx, nthreads=NTHREADS)
        assert audit_rolled_index(idx, tree) == []

    def test_audit_detects_a_planted_violation(self, tmp_path):
        """The audit itself must be able to fail: plant a widening
        merge by hand and confirm it is flagged."""
        t = VFSTree()
        t.mkdir("/p", mode=0o755, uid=10, gid=20)  # world-readable parent
        t.mkdir("/p/c", mode=0o700, uid=10, gid=20)  # private child
        t.create_file("/p/c/secret", mode=0o600, uid=10, gid=20)
        idx = dir2index(
            t, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
        ).index
        # conditions correctly refuse this pair...
        assert not rollup_compatible(0o755, 10, 20, 0o700, 10, 20)
        # ...so force the merge, bypassing them
        from repro.core.rollup import rollup_dir

        rollup_dir(idx, "/p", ["c"])
        assert audit_rolled_index(idx, t) == ["/p absorbed c"]
