"""Tests for the §III-A2 xattr sharding rules: placement decisions,
side-database protection, per-credential visibility, and the
query-time view construction."""

from __future__ import annotations

import pytest

from repro.core import db as dbmod
from repro.core.build import BuildOptions, dir2index
from repro.core.query import GUFIQuery, QuerySpec
from repro.core.xattrs import (
    GID_NONE,
    UID_NONE,
    accessible_side_dbs,
    shard_xattrs,
    side_db_name,
    side_db_protection,
)
from repro.fs.permissions import ROOT, Credentials
from repro.fs.tree import VFSTree
from repro.scan.trace import TraceRecord
from tests.conftest import NTHREADS

ALICE = Credentials(uid=1001, gid=1001)
BOB = Credentials(uid=1002, gid=1002)
GROUPIE = Credentials(uid=1003, gid=1003, groups=frozenset({100}))


def rec(path, ftype="f", mode=0o644, uid=1001, gid=1001, xattrs=None, ino=None):
    return TraceRecord(
        path=path, ftype=ftype, ino=ino or abs(hash(path)) % 10**6,
        mode=mode, nlink=1, uid=uid, gid=gid, size=0, blksize=4096,
        blocks=0, atime=0, mtime=0, ctime=0, xattrs=xattrs or {},
    )


class TestShardingRules:
    DIR = rec("/d", ftype="d", mode=0o750, uid=1001, gid=1001)

    def test_rule1_dir_xattrs_in_main(self):
        d = rec("/d", ftype="d", mode=0o750, uid=1001, gid=1001,
                xattrs={"user.d": b"1"})
        shards = shard_xattrs(d, [])
        assert len(shards.main_rows) == 1
        assert shards.num_side_dbs == 0

    def test_rule2_matching_entry_in_main(self):
        e = rec("/d/f", mode=0o640, uid=1001, gid=1001, xattrs={"user.x": b"1"})
        # read bits of 0640 == read bits of 0750? 0o440 vs 0o440 -> match
        shards = shard_xattrs(self.DIR, [e])
        assert len(shards.main_rows) == 1
        assert shards.num_side_dbs == 0

    def test_rule3_different_owner_gets_user_db(self):
        e = rec("/d/f", mode=0o640, uid=1002, gid=1001, xattrs={"user.x": b"1"})
        shards = shard_xattrs(self.DIR, [e])
        assert not shards.main_rows
        assert list(shards.per_user) == [1002]

    def test_rule4_different_group_readable(self):
        e = rec("/d/f", mode=0o640, uid=1001, gid=100, xattrs={"user.x": b"1"})
        shards = shard_xattrs(self.DIR, [e])
        assert list(shards.per_group_r) == [100]
        assert not shards.per_group_nr
        # owner copy always exists for non-matching entries
        assert list(shards.per_user) == [1001]

    def test_rule4_different_group_unreadable(self):
        e = rec("/d/f", mode=0o600, uid=1001, gid=100, xattrs={"user.x": b"1"})
        shards = shard_xattrs(self.DIR, [e])
        assert list(shards.per_group_nr) == [100]
        assert not shards.per_group_r

    def test_read_bit_mismatch_not_main(self):
        # same owner/group but wider read exposure than the directory
        e = rec("/d/f", mode=0o644, uid=1001, gid=1001, xattrs={"user.x": b"1"})
        shards = shard_xattrs(self.DIR, [e])
        assert not shards.main_rows
        assert list(shards.per_user) == [1001]

    def test_entries_without_xattrs_ignored(self):
        shards = shard_xattrs(self.DIR, [rec("/d/f")])
        assert not shards.main_rows and shards.num_side_dbs == 0


class TestSideDbNaming:
    def test_names(self):
        assert side_db_name("user", 5) == "xattrs.db.u5"
        assert side_db_name("group_r", 9) == "xattrs.db.g9.r"
        assert side_db_name("group_nr", 9) == "xattrs.db.g9.nr"
        with pytest.raises(ValueError):
            side_db_name("wat", 1)

    def test_protection(self):
        assert side_db_protection("user", 5) == (5, GID_NONE, 0o600)
        assert side_db_protection("group_r", 9) == (UID_NONE, 9, 0o040)
        assert side_db_protection("group_nr", 9) == (UID_NONE, 9, 0o000)


@pytest.fixture
def xattr_index(tmp_path):
    """/d is alice's 0750 dir containing files that trigger every rule."""
    t = VFSTree()
    t.mkdir("/d", mode=0o750, uid=1001, gid=1001)
    t.setxattr("/d", "user.dirtag", b"dv")
    t.create_file("/d/mine", mode=0o640, uid=1001, gid=1001)
    t.setxattr("/d/mine", "user.mine", b"m1")
    t.create_file("/d/bobs", mode=0o600, uid=1002, gid=1002)
    t.setxattr("/d/bobs", "user.bobs", b"b1")  # privileged restore
    t.create_file("/d/groupfile", mode=0o640, uid=1001, gid=100)
    t.setxattr("/d/groupfile", "user.grp", b"g1")
    t.create_file("/d/grouphidden", mode=0o600, uid=1001, gid=100)
    t.setxattr("/d/grouphidden", "user.hid", b"h1")
    result = dir2index(t, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS))
    return t, result.index


class TestVisibility:
    def q(self, index, creds):
        spec = QuerySpec(
            E="SELECT name, exattrs FROM xpentries", xattrs=True
        )
        return GUFIQuery(index, creds=creds, nthreads=NTHREADS).run(spec, "/d")

    def test_side_dbs_created(self, xattr_index):
        _, index = xattr_index
        d = index.index_dir("/d")
        assert (d / "xattrs.db.u1002").exists()
        assert (d / "xattrs.db.g100.r").exists()
        assert (d / "xattrs.db.g100.nr").exists()

    def test_tracking_table(self, xattr_index):
        _, index = xattr_index
        conn = dbmod.open_ro(index.db_path("/d"))
        names = {r[0] for r in conn.execute("SELECT filename FROM xattrs_avail")}
        assert "xattrs.db.u1002" in names
        # root sees everything
        assert len(accessible_side_dbs(conn, ROOT)) == len(names)
        # bob sees exactly his per-user db
        assert accessible_side_dbs(conn, BOB) == ["xattrs.db.u1002"]
        conn.close()

    def test_root_sees_all_values(self, xattr_index):
        _, index = xattr_index
        rows = dict(self.q(index, ROOT).rows)
        assert "user.mine=m1" in rows["mine"]
        assert "user.bobs=b1" in rows["bobs"]
        assert "user.grp=g1" in rows["groupfile"]
        assert "user.hid=h1" in rows["grouphidden"]

    def test_owner_sees_own_values(self, xattr_index):
        _, index = xattr_index
        rows = dict(self.q(index, ALICE).rows)
        assert "user.mine=m1" in rows["mine"]
        # alice owns groupfile/grouphidden: her per-user db carries them
        assert "user.grp=g1" in rows["groupfile"]
        assert "user.hid=h1" in rows["grouphidden"]
        # bob's private value is invisible to alice
        assert "bobs" not in rows

    def test_group_member_sees_group_readable_only(self, xattr_index):
        _, index = xattr_index
        rows = dict(self.q(index, GROUPIE).rows)
        # groupie can read /d (0750? no: group 1001...) -> /d gid is
        # 1001, groupie's groups are {1003, 100}: cannot read /d at all!
        assert rows == {}

    def test_group_visibility_with_dir_access(self, tmp_path):
        # same shapes but the directory itself is group-100 readable
        t = VFSTree()
        t.mkdir("/d", mode=0o750, uid=1001, gid=100)
        t.create_file("/d/gfile", mode=0o640, uid=1001, gid=100)
        t.setxattr("/d/gfile", "user.grp", b"gv")
        t.create_file("/d/ghidden", mode=0o600, uid=1001, gid=100)
        t.setxattr("/d/ghidden", "user.hid", b"hv")
        result = dir2index(t, tmp_path / "idx2", opts=BuildOptions(nthreads=NTHREADS))
        rows = dict(self.q(result.index, GROUPIE).rows)
        # gfile matches the parent protection -> main db -> visible;
        # ghidden's value is group-unreadable -> invisible.
        assert "user.grp=gv" in rows.get("gfile", "")
        assert "ghidden" not in rows

    def test_bob_cannot_reach_dir(self, xattr_index):
        # /d is 0750 alice:1001 — bob has no access at all, so even his
        # own per-user side db is unreachable through a query there.
        _, index = xattr_index
        assert self.q(index, BOB).rows == []

    def test_xattr_names_visible_in_entries(self, xattr_index):
        # names are metadata: any user who can list /d sees them
        _, index = xattr_index
        spec = QuerySpec(E="SELECT name, xattr_names FROM entries")
        rows = dict(
            GUFIQuery(index, creds=ALICE, nthreads=NTHREADS)
            .run(spec, "/d").rows
        )
        assert rows["bobs"] == "user.bobs"
