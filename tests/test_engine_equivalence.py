"""Facade/engine equivalence: :class:`repro.core.query.GUFIQuery` must
be a drop-in for :class:`repro.core.engine.QueryEngine` — identical
rows AND identical counters — across the whole behavior matrix:
privileged/unprivileged credentials × rollup on/off × plan on/off ×
streamed vs in-memory sinks. Plus golden invariants on the demo tree
and a hypothesis property over generated predicates."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core.build import BuildOptions, dir2index
from repro.core.engine import QueryEngine, ThreadFileSink
from repro.core.plan import plan_for
from repro.core.query import GUFIQuery, Q1_LIST_PATHS, QuerySpec
from repro.core.rollup import rollup
from repro.core.tools import FindFilters
from repro.fs.permissions import ROOT

from .conftest import ALICE, CAROL_IN_PROJ, NTHREADS, build_demo_tree

#: the find-shaped query the plan cases gate on (size >= 600 keeps
#: p.c (700) and d.h5 (900) and prunes most directories)
FILTERS = FindFilters(min_size=600)
SPEC = QuerySpec(
    E="SELECT rpath(dname, d_isroot, name), type, size "
    f"FROM vrpentries{FILTERS.where_clause()}"
)

CREDS_CASES = [("root", ROOT), ("alice", ALICE), ("carol", CAROL_IN_PROJ)]
COUNTERS = (
    "dirs_visited",
    "dirs_denied",
    "dbs_opened",
    "dirs_errored",
    "dirs_pruned_by_plan",
    "attaches_elided",
)


@pytest.fixture(scope="module")
def plain_index(tmp_path_factory):
    root = tmp_path_factory.mktemp("eq_plain")
    return dir2index(
        build_demo_tree(), root / "idx", opts=BuildOptions(nthreads=NTHREADS)
    ).index


@pytest.fixture(scope="module")
def rolled_index(tmp_path_factory):
    root = tmp_path_factory.mktemp("eq_rolled")
    idx = dir2index(
        build_demo_tree(), root / "idx", opts=BuildOptions(nthreads=NTHREADS)
    ).index
    rollup(idx, nthreads=NTHREADS)
    return idx


def _index_for(request, rolled: bool):
    return request.getfixturevalue("rolled_index" if rolled else "plain_index")


def _counters(result) -> dict:
    return {name: getattr(result, name) for name in COUNTERS}


def _streamed_rows(result) -> list[str]:
    lines: list[str] = []
    for path in result.output_files or []:
        with open(path) as fh:
            lines.extend(ln.rstrip("\n") for ln in fh)
    return sorted(lines)


@pytest.mark.parametrize(
    "who,rolled,planned,streamed",
    [
        pytest.param(
            who, rolled, planned, streamed,
            id=f"{who}-{'rollup' if rolled else 'plain'}"
            f"-{'plan' if planned else 'noplan'}"
            f"-{'stream' if streamed else 'memory'}",
        )
        for (who, _), rolled, planned, streamed in itertools.product(
            CREDS_CASES, (False, True), (False, True), (False, True)
        )
    ],
)
def test_run_matrix(request, tmp_path, who, rolled, planned, streamed):
    """Same rows, same counters, whichever door you come in through."""
    index = _index_for(request, rolled)
    creds = dict(CREDS_CASES)[who]
    plan = plan_for(FILTERS) if planned else None

    with QueryEngine(index, creds=creds, nthreads=NTHREADS) as warm:
        # one warm-up pass so both measured runs see the same cache
        # state (attach elision only fires on cached metadata)
        warm.run(SPEC, plan=plan)

    with GUFIQuery(index, creds=creds, nthreads=NTHREADS) as facade, \
            QueryEngine(index, creds=creds, nthreads=NTHREADS) as engine:
        if streamed:
            fa = facade.run(
                SPEC, plan=plan,
                sink=ThreadFileSink(str(tmp_path / "fa")),
            )
            en = engine.run(
                SPEC, plan=plan,
                sink=ThreadFileSink(str(tmp_path / "en")),
            )
            assert _streamed_rows(fa) == _streamed_rows(en)
            assert fa.rows == en.rows == []
        else:
            fa = facade.run(SPEC, plan=plan)
            en = engine.run(SPEC, plan=plan)
            assert sorted(fa.rows) == sorted(en.rows)
        assert _counters(fa) == _counters(en)
        assert not fa.truncated and not en.truncated

        # golden invariants, independent of which object ran the query
        for r in (fa, en):
            assert r.dirs_visited >= 1
            assert r.dbs_opened + r.attaches_elided <= r.dirs_visited + 1
            if who == "root":
                assert r.dirs_denied == 0
            if not planned:
                assert r.dirs_pruned_by_plan == 0
                assert r.attaches_elided == 0
                assert r.dbs_opened == r.dirs_visited
            else:
                # warm cache + selective predicate: elision must fire
                assert r.attaches_elided > 0
                assert r.dirs_pruned_by_plan >= r.attaches_elided


@pytest.mark.parametrize("who", [w for w, _ in CREDS_CASES])
@pytest.mark.parametrize("path", ["/", "/home/bob", "/proj/shared"])
def test_run_single_matrix(plain_index, who, path):
    creds = dict(CREDS_CASES)[who]
    with GUFIQuery(plain_index, creds=creds, nthreads=NTHREADS) as facade, \
            QueryEngine(plain_index, creds=creds, nthreads=NTHREADS) as engine:
        try:
            fa = facade.run_single(SPEC, path)
            fa_err = None
        except PermissionError as exc:
            fa, fa_err = None, str(exc)
        try:
            en = engine.run_single(SPEC, path)
            en_err = None
        except PermissionError as exc:
            en, en_err = None, str(exc)
        assert fa_err == en_err
        if fa is not None and en is not None:
            assert sorted(fa.rows) == sorted(en.rows)
            assert _counters(fa) == _counters(en)


def test_rollup_preserves_rows_across_apis(plain_index, rolled_index):
    """Rollup changes *where* rows come from, never which rows come
    back — through either API."""
    for creds in (ROOT, ALICE, CAROL_IN_PROJ):
        results = []
        for index in (plain_index, rolled_index):
            with QueryEngine(index, creds=creds, nthreads=NTHREADS) as q:
                results.append(sorted(q.run(Q1_LIST_PATHS).rows))
            with GUFIQuery(index, creds=creds, nthreads=NTHREADS) as q:
                results.append(sorted(q.run(Q1_LIST_PATHS).rows))
        assert results[0] == results[1] == results[2] == results[3]


def test_stage_timings_populated_identically(plain_index):
    """With metrics on, both APIs fill stage_seconds for all five
    stages (J/G real work included via an aggregated spec)."""
    agg_spec = QuerySpec(
        I="CREATE TABLE sizes (total_size INTEGER)",
        S="INSERT INTO sizes SELECT TOTAL(size) FROM summary",
        E="INSERT INTO sizes SELECT TOTAL(size) FROM pentries",
        J="INSERT INTO aggregate.sizes SELECT TOTAL(total_size) FROM sizes",
        G="SELECT TOTAL(total_size) FROM sizes",
    )
    with obs.enabled(metrics=True):
        for cls in (GUFIQuery, QueryEngine):
            with cls(plain_index, nthreads=NTHREADS) as q:
                result = q.run(agg_spec)
                assert result.stage_seconds is not None
                assert set(result.stage_seconds) == {"T", "S", "E", "J", "G"}
                assert all(v >= 0.0 for v in result.stage_seconds.values())
                assert result.scalar() is not None
                # run_single has no merge phase: S/E fill the scratch
                # table, G never runs, so no rows — but it is counted
                single = q.run_single(agg_spec, "/home/bob")
                assert single.rows == []
                assert single.dbs_opened == 1


def test_stage_timings_absent_when_disabled(plain_index):
    with QueryEngine(plain_index, nthreads=NTHREADS) as q:
        assert q.run(SPEC).stage_seconds is None


@settings(max_examples=12, deadline=None)
@given(
    min_size=st.integers(min_value=0, max_value=1200),
    who=st.sampled_from([w for w, _ in CREDS_CASES]),
    planned=st.booleans(),
)
def test_property_rows_and_counters_agree(
    plain_index, min_size, who, planned
):
    """For any size predicate and any caller, the facade and the
    engine return the same rows and counters (plan on or off)."""
    creds = dict(CREDS_CASES)[who]
    filters = FindFilters(min_size=min_size)
    spec = QuerySpec(
        E="SELECT rpath(dname, d_isroot, name), size "
        f"FROM vrpentries{filters.where_clause()}"
    )
    plan = plan_for(filters) if planned else None
    with GUFIQuery(plain_index, creds=creds, nthreads=NTHREADS) as facade, \
            QueryEngine(plain_index, creds=creds, nthreads=NTHREADS) as engine:
        fa = facade.run(spec, plan=plan)
        en = engine.run(spec, plan=plan)
        assert sorted(fa.rows) == sorted(en.rows)
        assert _counters(fa) == _counters(en)
