"""Consistency tests between the transcribed paper numbers and the
presets/defaults the reproduction uses — if a calibration constant
drifts away from what the paper reports, these fail."""

from __future__ import annotations

import pytest

from repro.gen import datasets
from repro.harness import paper
from repro.scan.scanners import HPSS_SQL, LESTER
from repro.sim.ssd import SSDModel, StorageHost


class TestTable1Transcription:
    def test_gen_presets_match_paper_counts(self):
        for row in paper.TABLE1:
            dirs, files = datasets.table1_paper_counts(row.filesystem)
            assert (dirs, files) == (row.dirs, row.files)

    def test_scan_types_match(self):
        for row in paper.TABLE1:
            assert datasets.TABLE1_SCAN_TYPE[row.filesystem] == row.scan_type


class TestScannerCalibration:
    def test_lester_per_row_matches_scratch1(self):
        """Table I: /scratch1's Lester scan did 109.4M records in 19
        minutes — our per-row constant must land within 25%."""
        row = next(r for r in paper.TABLE1 if r.scan_type == "lester")
        implied = row.scan_minutes * 60 / (row.dirs + row.files)
        assert LESTER.per_stat == pytest.approx(implied, rel=0.25)

    def test_sql_per_row_matches_archive(self):
        row = next(r for r in paper.TABLE1 if r.scan_type == "sql")
        implied = row.scan_minutes * 60 / (row.dirs + row.files)
        assert HPSS_SQL.per_stat == pytest.approx(implied, rel=0.25)


class TestSSDCalibration:
    def test_saturation_near_paper_thread_count(self):
        ssd = SSDModel()
        assert ssd.max_bw == pytest.approx(paper.FIG7_SSD_GBPS * 1e9)
        assert ssd.saturation_qd == pytest.approx(
            paper.FIG7_SATURATION_THREADS, rel=0.1
        )

    def test_two_ssd_band_contains_paper_point(self):
        host = StorageHost(SSDModel(), n_ssds=2)
        # the paper observed 5.26 GB/s at 224 threads on 2 SSDs; the
        # model at that operating point must be within 25%
        assert host.throughput(224) == pytest.approx(
            paper.FIG7_TWO_SSD_GBPS * 1e9, rel=0.25
        )


class TestDatasetTranscription:
    def test_dataset_counts(self):
        d2 = datasets.dataset2(scale=0.00002)
        # the preset scales the paper's counts
        assert d2.spec.n_dirs == max(8, int(paper.DATASET2_DIRS * 0.00002))
        assert d2.spec.n_files == max(8, int(paper.DATASET2_FILES * 0.00002))

    def test_kernel_files(self):
        ns = datasets.linux_kernel_tree(scale=1.0 / 74)  # 1K files
        assert ns.spec.n_files == paper.FIG1_KERNEL_FILES // 74


class TestFigureShapeData:
    def test_fig10_ordering(self):
        assert paper.fig10_expected_ordering()[-1] == 3  # Q4 dominates

    def test_fig9_speedups_decrease_with_coverage(self):
        cov = sorted(paper.FIG9_SPEEDUPS)
        speeds = [paper.FIG9_SPEEDUPS[c] for c in cov]
        assert speeds == sorted(speeds, reverse=True)

    def test_rollup_reduction_bounds(self):
        assert (
            paper.ROLLUP_REDUCTION_PROJECT_MIN
            < paper.ROLLUP_REDUCTION_MEAN
            < paper.ROLLUP_REDUCTION_HOME_MAX
        )
