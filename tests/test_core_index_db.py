"""Unit tests for the on-disk index layout helpers and the SQLite
connection layer (path mapping, enumeration, table-level byte
accounting, template reuse)."""

from __future__ import annotations

import sqlite3
from pathlib import Path

import pytest

from repro.core import db as dbmod
from repro.core.build import BuildOptions, dir2index
from repro.core.index import GUFIIndex
from tests.conftest import NTHREADS, build_demo_tree


@pytest.fixture
def idx(tmp_path):
    return dir2index(
        build_demo_tree(), tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
    ).index


class TestPathMapping:
    def test_roundtrip(self, idx):
        for sp in ("/", "/home", "/home/alice/sub", "/proj/shared/data"):
            assert idx.source_path(idx.index_dir(sp)) == sp

    def test_root_maps_to_root(self, idx):
        assert idx.index_dir("/") == idx.root
        assert idx.db_path("/").name == "db.db"

    def test_normalisation(self, idx):
        assert idx.index_dir("/home/") == idx.index_dir("/home")


class TestEnumeration:
    def test_iter_index_dirs(self, idx):
        dirs = {idx.source_path(d) for d in idx.iter_index_dirs()}
        assert "/" in dirs and "/home/alice/sub" in dirs
        assert len(dirs) == idx.count_dbs()

    def test_iter_from_subtree(self, idx):
        dirs = {idx.source_path(d) for d in idx.iter_index_dirs("/home")}
        assert dirs == {"/home", "/home/alice", "/home/alice/sub",
                        "/home/bob", "/home/bob/secret"}

    def test_total_db_bytes_positive(self, idx):
        total = idx.total_db_bytes()
        assert total > idx.count_dbs() * 4096

    def test_subdir_names(self, idx):
        assert idx.subdir_names("/home") == ["alice", "bob"]
        assert idx.subdir_names("/home/alice/sub") == []

    def test_subdir_names_missing(self, idx):
        from repro.core.index import IndexError_

        with pytest.raises(IndexError_):
            idx.subdir_names("/nope")


class TestDirMeta:
    def test_meta_fields(self, idx):
        meta = idx.dir_meta("/proj/shared")
        assert (meta.mode, meta.uid, meta.gid) == (0o770, 1001, 100)
        assert not meta.rolledup and meta.rollup_entries == 0

    def test_meta_missing_summary(self, tmp_path):
        db = tmp_path / "db.db"
        conn = dbmod.create_db(db)
        conn.execute("DELETE FROM summary")
        conn.close()
        ro = dbmod.open_ro(db)
        from repro.core.index import IndexError_

        with pytest.raises(IndexError_):
            GUFIIndex.read_dir_meta(ro)
        ro.close()


class TestDbLayer:
    def test_template_cached_per_process(self, tmp_path):
        dbmod.create_db(tmp_path / "a.db").close()
        dbmod.create_db(tmp_path / "b.db").close()
        assert (tmp_path / "a.db").read_bytes()[:16] == b"SQLite format 3\x00"
        # identical empty templates
        assert (
            (tmp_path / "a.db").stat().st_size
            == (tmp_path / "b.db").stat().st_size
        )

    def test_create_db_preserves_existing(self, tmp_path):
        conn = dbmod.create_db(tmp_path / "x.db")
        conn.execute("INSERT INTO entries (name) VALUES ('keep')")
        conn.close()
        conn = dbmod.create_db(tmp_path / "x.db")  # reopen, not truncate
        (n,) = conn.execute("SELECT COUNT(*) FROM entries").fetchone()
        conn.close()
        assert n == 1

    def test_table_bytes(self, idx):
        conn = sqlite3.connect(":memory:")
        conn.execute(
            "ATTACH DATABASE ? AS gufi",
            (str(idx.db_path("/proj/shared")),),
        )
        summary_bytes = dbmod.table_bytes(conn, "gufi", {"summary"})
        both = dbmod.table_bytes(conn, "gufi", {"summary", "entries"})
        whole = dbmod.db_file_bytes(idx.db_path("/proj/shared"))
        conn.close()
        assert 0 < summary_bytes <= both <= whole + 4096

    def test_db_file_bytes_missing(self):
        assert dbmod.db_file_bytes("/no/such/file.db") == 0

    def test_attach_ro_blocks_writes(self, idx):
        conn = sqlite3.connect(":memory:", uri=True)
        dbmod.attach_ro(conn, idx.db_path("/home/bob"), "g")
        with pytest.raises(sqlite3.OperationalError):
            conn.execute("DELETE FROM g.entries")
        dbmod.detach(conn, "g")
        conn.close()

    def test_is_readonly_error(self):
        err = sqlite3.OperationalError("attempt to write a readonly database")
        assert dbmod.is_readonly_error(err)
        assert not dbmod.is_readonly_error(sqlite3.OperationalError("nope"))

    def test_open_rw_allows_schema_change(self, idx):
        conn = dbmod.open_rw(idx.db_path("/public"))
        conn.execute("CREATE TABLE custom (x)")
        conn.close()
        ro = dbmod.open_ro(idx.db_path("/public"))
        assert ro.execute(
            "SELECT name FROM sqlite_master WHERE name='custom'"
        ).fetchone()
        ro.close()


class TestPhysicalModes:
    def test_apply_physical_mode_best_effort(self, idx, tmp_path):
        # never raises, even for odd modes
        idx.apply_physical_mode("/home/alice", 0o000)
        idx.apply_physical_mode("/home/alice", 0o777)
        assert Path(idx.index_dir("/home/alice")).exists()
