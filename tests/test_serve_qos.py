"""Unit tests for the serving layer's QoS primitives.

The three rings (token bucket, tenant quota, admission control) are
pure policy with no engine behind them, so they are tested in
isolation with injected clocks and bare event loops — the full stack
is covered by ``test_serve_app.py`` / ``test_serve_stress.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.qos import (
    AdmissionController,
    LoadShed,
    QuotaExceeded,
    TenantQuota,
    TokenBucket,
)


def run(coro):
    return asyncio.run(coro)


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=lambda: now[0])
        # the full burst is available immediately
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        # empty: the hint is the time until one token exists (rate 2/s)
        wait = bucket.acquire()
        assert wait == pytest.approx(0.5)
        # half a second later exactly one token has accrued
        now[0] = 0.5
        assert bucket.acquire() == 0.0
        assert bucket.acquire() > 0.0

    def test_refill_caps_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=lambda: now[0])
        now[0] = 100.0  # a long idle accrues at most `burst` tokens
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        assert bucket.acquire() > 0.0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)


class TestTenantQuota:
    def test_limit_is_per_tenant(self):
        quota = TenantQuota(limit=2)
        quota.acquire("a")
        quota.acquire("a")
        with pytest.raises(QuotaExceeded):
            quota.acquire("a")
        # a full tenant does not consume b's quota
        quota.acquire("b")
        quota.release("a")
        quota.acquire("a")
        assert quota.inflight("a") == 2
        assert quota.inflight("b") == 1

    def test_disabled(self):
        quota = TenantQuota(limit=None)
        for _ in range(100):
            quota.acquire("a")
        assert quota.inflight("a") == 0  # not even counted


class TestAdmissionController:
    def test_slots_then_queue_then_shed(self):
        async def scenario():
            adm = AdmissionController(max_inflight=2, queue_limit=1)
            await adm.acquire()
            await adm.acquire()
            assert adm.inflight == 2
            # third request queues...
            waiter = asyncio.ensure_future(adm.acquire())
            await asyncio.sleep(0)
            assert adm.queue_depth == 1
            # ...fourth is shed: the queue is bounded
            with pytest.raises(LoadShed) as exc:
                await adm.acquire()
            assert exc.value.reason == "queue_full"
            assert exc.value.retry_after > 0
            # a release hands the slot to the queued waiter directly
            adm.release()
            await waiter
            assert adm.inflight == 2
            assert adm.queue_depth == 0
            assert adm.shed["queue_full"] == 1

        run(scenario())

    def test_queue_wait_bounded_by_deadline(self):
        async def scenario():
            adm = AdmissionController(max_inflight=1, queue_limit=4)
            await adm.acquire()
            with pytest.raises(LoadShed) as exc:
                await adm.acquire(timeout=0.01)
            assert exc.value.reason == "deadline"
            assert adm.queue_depth == 0  # expired waiter left the queue
            assert adm.shed["deadline"] == 1
            # an already-lapsed deadline is shed without queuing
            with pytest.raises(LoadShed) as exc:
                await adm.acquire(timeout=0.0)
            assert exc.value.reason == "deadline"

        run(scenario())

    def test_fifo_handoff(self):
        async def scenario():
            adm = AdmissionController(max_inflight=1, queue_limit=8)
            await adm.acquire()
            order: list[int] = []

            async def wait(i: int) -> None:
                await adm.acquire()
                order.append(i)

            waiters = [asyncio.ensure_future(wait(i)) for i in range(4)]
            await asyncio.sleep(0)
            assert adm.queue_depth == 4
            for _ in range(4):
                adm.release()
                await asyncio.sleep(0)
            await asyncio.gather(*waiters)
            assert order == [0, 1, 2, 3]
            # one slot is still held by the last waiter
            assert adm.inflight == 1
            adm.release()
            assert adm.inflight == 0

        run(scenario())

    def test_cancelled_waiter_releases_queue_position(self):
        async def scenario():
            adm = AdmissionController(max_inflight=1, queue_limit=2)
            await adm.acquire()
            waiter = asyncio.ensure_future(adm.acquire())
            await asyncio.sleep(0)
            assert adm.queue_depth == 1
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            assert adm.queue_depth == 0
            # the held slot is unaffected
            assert adm.inflight == 1
            adm.release()
            assert adm.inflight == 0

        run(scenario())
