"""Tests for the baseline systems: Brindexer's hash partitioning,
flattened schema, full-scan queries, and the POSIX tools' modelled
costs and permission behaviour."""

from __future__ import annotations

import pytest

from repro.baselines.brindexer import BrindexerIndex, _shard_of
from repro.baselines.posix_tools import (
    du_s,
    find_getfattr,
    find_ls,
    find_names,
)
from repro.fs.mounts import MountedFS
from repro.fs.permissions import Credentials
from repro.sim.netfs import LUSTRE, NFS, XFS_LOCAL
from repro.scan.scanners import TreeWalkScanner
from tests.conftest import ALICE, BOB, NTHREADS, build_demo_tree


@pytest.fixture(scope="module")
def demo_stanzas():
    return TreeWalkScanner(build_demo_tree(), nthreads=1).scan("/").stanzas


@pytest.fixture
def brin(demo_stanzas, tmp_path):
    idx, _ = BrindexerIndex.build(demo_stanzas, tmp_path / "brin", n_shards=8)
    return idx


class TestBrindexer:
    def test_shard_hash_stable_and_bounded(self):
        assert _shard_of("/a/b", 256) == _shard_of("/a/b", 256)
        assert all(0 <= _shard_of(f"/p{i}", 16) < 16 for i in range(100))

    def test_build_row_count(self, demo_stanzas, brin):
        total = sum(1 + len(s.entries) for s in demo_stanzas)
        assert brin.total_rows() == total

    def test_all_shards_exist(self, brin):
        assert len(brin.shard_sizes()) == 8
        assert brin.total_bytes() > 0

    def test_same_parent_same_shard(self, brin):
        import sqlite3

        # every entry of one directory lands in exactly one shard
        found_in = []
        for i in range(8):
            conn = sqlite3.connect(brin.shard_path(i))
            n = conn.execute(
                "SELECT COUNT(*) FROM entries WHERE parent='/proj/shared'"
            ).fetchone()[0]
            conn.close()
            if n:
                found_in.append(i)
        assert len(found_in) == 1

    def test_list_names(self, brin, demo_stanzas):
        r = brin.list_names(nthreads=NTHREADS)
        expected = sum(len(s.entries) for s in demo_stanzas)
        assert len(r.rows) == expected
        assert r.shards_read == 8

    def test_uid_filter_still_scans_everything(self, brin):
        r_all = brin.list_names(nthreads=NTHREADS)
        r_uid = brin.list_names(uid=1001, nthreads=NTHREADS)
        assert len(r_uid.rows) < len(r_all.rows)
        # the defining limitation: every shard is still read
        assert r_uid.shards_read == r_all.shards_read == 8

    def test_du(self, brin, demo_stanzas):
        expected = sum(e.size for s in demo_stanzas for e in s.entries)
        r = brin.du(nthreads=NTHREADS)
        assert r.rows[0][0] == pytest.approx(expected)

    def test_du_uid(self, brin):
        r = brin.du(uid=1001, nthreads=NTHREADS)
        assert r.rows[0][0] == pytest.approx(100 + 250 + 700)

    def test_dir_sizes_group_by(self, brin):
        r = brin.dir_sizes(nthreads=NTHREADS)
        sizes = dict(r.rows)
        assert sizes["/home/bob"] == pytest.approx(300)

    def test_tracer(self, brin):
        from repro.sim.blktrace import IOTracer

        tr = IOTracer()
        brin.list_names(nthreads=NTHREADS, tracer=tr)
        assert tr.num_reads == 8
        assert tr.total_bytes == brin.total_bytes()

    def test_walk_stats_for_fig8c(self, brin):
        r = brin.list_names(nthreads=NTHREADS)
        assert r.walk_stats is not None
        assert len(r.walk_stats.thread_completion_times) == NTHREADS


class TestPosixTools:
    @pytest.fixture
    def mount(self):
        return MountedFS(build_demo_tree(), XFS_LOCAL)

    def test_find_ls_counts(self, mount):
        r = find_ls(mount, "/")
        tree = mount.tree
        total = tree.num_dirs + tree.num_files + tree.num_symlinks
        assert r.entries_seen == total
        assert r.modeled_time > 0

    def test_permission_pruning(self):
        m = MountedFS(build_demo_tree(), XFS_LOCAL)
        r_root = find_ls(m, "/")
        r_bob = find_ls(m, "/", creds=BOB)
        assert r_bob.entries_seen < r_root.entries_seen

    def test_du_total(self, mount):
        r = du_s(mount, "/")
        expected = sum(
            i.size for _, i in mount.tree.iter_inodes()
        )
        assert r.bytes_total == expected

    def test_find_names(self, mount):
        r = find_names(mount, "/", name_substring=".txt")
        assert r.matches == 3

    def test_remote_costs_more(self):
        t = build_demo_tree()
        local = find_ls(MountedFS(t, XFS_LOCAL), "/")
        nfs = find_ls(MountedFS(t, NFS), "/")
        lustre = find_ls(MountedFS(t, LUSTRE), "/")
        assert local.modeled_time < nfs.modeled_time < lustre.modeled_time

    def test_getfattr_cost_proportional_to_total_files(self):
        """Fig 9a's key asymmetry: xattr search cost on POSIX does not
        depend on how many files actually carry the attribute."""
        t = build_demo_tree()
        m = MountedFS(t, XFS_LOCAL)
        r_none = find_getfattr(m, "/", "user.absent")
        t.setxattr("/home/bob/b.txt", "user.tag", b"x")
        m2 = MountedFS(t, XFS_LOCAL)
        r_one = find_getfattr(m2, "/", "user.tag")
        assert r_one.entries_seen == r_none.entries_seen
        assert r_one.modeled_time == pytest.approx(r_none.modeled_time, rel=0.01)
        assert r_one.matches == 1 and r_none.matches == 0

    def test_getfattr_file_list_skips_walk(self):
        t = build_demo_tree()
        m = MountedFS(t, XFS_LOCAL)
        walked = find_getfattr(m, "/", "user.x")
        m2 = MountedFS(t, XFS_LOCAL)
        files = [p for p, i in t.iter_inodes() if i.ftype.value != "d"]
        listed = find_getfattr(m2, "/", "user.x", file_list=files)
        assert listed.modeled_time < walked.modeled_time

    def test_getfattr_parallel_speedup(self):
        t = build_demo_tree()
        files = [p for p, i in t.iter_inodes() if i.ftype.value != "d"]
        serial = find_getfattr(
            MountedFS(t, XFS_LOCAL), "/", "user.x", file_list=files
        )
        par = find_getfattr(
            MountedFS(t, XFS_LOCAL), "/", "user.x", file_list=files,
            xargs_parallel=8,
        )
        assert par.modeled_time < serial.modeled_time

    def test_getfattr_value_filter(self):
        t = build_demo_tree()
        t.setxattr("/home/bob/b.txt", "user.tag", b"needle-here")
        t.setxattr("/public/readme", "user.tag", b"other")
        m = MountedFS(t, XFS_LOCAL)
        r = find_getfattr(m, "/", "user.tag", value_substring="needle")
        assert r.matches == 1

    def test_getfattr_permission_denied_values_skipped(self):
        t = build_demo_tree()
        t.setxattr("/home/alice/a.txt", "user.tag", b"private")
        m = MountedFS(t, XFS_LOCAL)
        files = ["/home/alice/a.txt"]
        r = find_getfattr(m, "/", "user.tag", creds=BOB, file_list=files)
        assert r.matches == 0
