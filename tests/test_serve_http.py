"""Socket-level tests for the HTTP/1.1 bridge and the CLI wiring.

``test_serve_app.py`` exercises the app in-process; here the same
app goes on a real loopback socket via ``repro.serve.http.serve`` and
is driven with the stdlib ``http.client`` — framing, keep-alive, and
the ``serve`` CLI subcommand's plumbing are what is under test, not
the tools themselves.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.core.server import GUFIServer, IdentityProvider
from repro.serve import GUFIApp
from repro.serve.http import serve
from tests.conftest import NTHREADS


@pytest.fixture
def identity():
    idp = IdentityProvider()
    idp.add_user("alice", uid=1001, gid=1001)
    idp.add_user("root", uid=0, gid=0)
    return idp


@pytest.fixture
def live_server(demo_index, identity):
    """The full stack on an ephemeral loopback port; yields the port."""
    with GUFIServer(demo_index, identity, nthreads=NTHREADS) as srv, \
            GUFIApp(srv, max_inflight=2, queue_limit=8) as app:
        ready = threading.Event()
        loop_holder: dict = {}

        def run() -> None:
            loop = asyncio.new_event_loop()
            loop_holder["loop"] = loop
            task = loop.create_task(serve(app, port=0, ready=ready))
            loop_holder["task"] = task
            try:
                loop.run_until_complete(task)
            except asyncio.CancelledError:
                pass
            finally:
                loop.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(10.0), "server never bound"
        try:
            yield ready.port
        finally:
            loop = loop_holder["loop"]
            loop.call_soon_threadsafe(loop_holder["task"].cancel)
            thread.join(10.0)


def _request(port, method, path, body=None, user=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    headers = {}
    if user is not None:
        headers["x-gufi-user"] = user
    payload = None
    if body is not None:
        payload = json.dumps(body)
        headers["content-type"] = "application/json"
    conn.request(method, path, body=payload, headers=headers)
    resp = conn.getresponse()
    data = resp.read()
    conn.close()
    return resp.status, data


class TestHTTPBridge:
    def test_healthz(self, live_server):
        status, data = _request(live_server, "GET", "/healthz")
        assert status == 200
        assert json.loads(data) == {"ok": True}

    def test_invoke_over_socket(self, live_server):
        status, data = _request(
            live_server, "POST", "/v1/invoke",
            body={"tool": "du", "start": "/"}, user="root",
        )
        assert status == 200
        payload = json.loads(data)
        assert payload["ok"] and payload["result"] > 0

    def test_metrics_over_socket(self, live_server):
        from repro import obs

        with obs.enabled(metrics=True):
            _request(live_server, "POST", "/v1/invoke",
                     body={"tool": "du"}, user="alice")
            status, data = _request(live_server, "GET", "/metrics")
        assert status == 200
        assert b"gufi_serve_requests_total" in data

    def test_keep_alive_reuses_connection(self, live_server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", live_server, timeout=10
        )
        for _ in range(3):
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            assert resp.status == 200
            resp.read()
        conn.close()

    def test_auth_rejected_over_socket(self, live_server):
        status, data = _request(
            live_server, "POST", "/v1/invoke", body={"tool": "du"}
        )
        assert status == 401
        assert json.loads(data)["error"]["code"] == "auth_required"


class TestServeCLI:
    def test_cmd_serve_wires_flags_into_app(
        self, tmp_path, monkeypatch, capsys
    ):
        """The subcommand builds the server + app from its flags; the
        blocking accept loop is stubbed so the test returns."""
        from repro.cli import main
        from repro.core.build import BuildOptions, dir2index
        from repro.serve import http as serve_http
        from tests.conftest import build_demo_tree

        tree = build_demo_tree()
        dir2index(tree, tmp_path / "idx",
                  opts=BuildOptions(nthreads=NTHREADS))

        captured: dict = {}

        async def fake_serve(app, host="127.0.0.1", port=8080, ready=None):
            captured["app"] = app
            captured["host"] = host
            captured["port"] = port

        monkeypatch.setattr(serve_http, "serve", fake_serve)
        rc = main([
            "serve", str(tmp_path / "idx"),
            "--port", "9999", "--max-inflight", "3",
            "--queue-limit", "7", "--tenant-qps", "50",
            "--tenant-concurrency", "2", "--deadline-ms", "1500",
        ])
        assert rc == 0
        app = captured["app"]
        assert captured["port"] == 9999
        assert app.admission.max_inflight == 3
        assert app.admission.queue_limit == 7
        assert app.tenant_qps == 50.0
        assert app.quota.limit == 2
        assert app.deadline_s == pytest.approx(1.5)
        # demo principals are loaded by default
        assert app.server.identity.authenticate("alice").uid == 1001
        assert "serving" in capsys.readouterr().out

    def test_cmd_serve_passwd_file(self, tmp_path, monkeypatch):
        from repro.cli import main
        from repro.core.build import BuildOptions, dir2index
        from repro.serve import http as serve_http
        from tests.conftest import build_demo_tree

        tree = build_demo_tree()
        dir2index(tree, tmp_path / "idx",
                  opts=BuildOptions(nthreads=NTHREADS))
        (tmp_path / "passwd").write_text(
            "eve:x:2001:2001:Eve::/bin/sh\n"
        )
        (tmp_path / "group").write_text("proj:x:100:eve\n")

        captured: dict = {}

        async def fake_serve(app, host="127.0.0.1", port=8080, ready=None):
            captured["app"] = app

        monkeypatch.setattr(serve_http, "serve", fake_serve)
        rc = main([
            "serve", str(tmp_path / "idx"),
            "--passwd", str(tmp_path / "passwd"),
            "--group", str(tmp_path / "group"),
        ])
        assert rc == 0
        creds = captured["app"].server.identity.authenticate("eve")
        assert creds.uid == 2001 and creds.in_group(100)
