"""The observability subsystem: registry, tracer, slow log, exporters,
and their integration with the walker / query engine / build path.

Every test that enables observability does so through the scoped
``obs.enabled()`` context manager, so the process-wide state other
tests see is always the default null implementations.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.core.build import BuildOptions, dir2index
from repro.core.query import GUFIQuery, Q1_LIST_NAMES, QuerySpec
from repro.core.tools import FindFilters, GUFITools
from repro.obs.export import (
    render_metrics,
    render_slow_log,
    spans_to_jsonl,
    to_prometheus,
    write_trace_jsonl,
)
from repro.obs.registry import MetricsRegistry, MetricsSnapshot, NullRecorder
from repro.obs.slowlog import SlowQueryLog
from repro.obs.spans import NullTracer, Tracer
from repro.scan.walker import ParallelTreeWalker, RetryPolicy

from tests.conftest import NTHREADS


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_counter_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("c_total")
        reg.counter("c_total", 2.5)
        reg.counter("c_total", 1, stage="E")
        snap = reg.snapshot()
        assert snap.counter("c_total") == 3.5
        assert snap.counter("c_total", stage="E") == 1.0
        assert snap.counter_total("c_total") == 4.5
        assert snap.counter("never_recorded") == 0.0

    def test_zero_value_creates_series(self):
        reg = MetricsRegistry()
        reg.counter("zeroed_total", 0.0)
        snap = reg.snapshot()
        assert ("zeroed_total", ()) in snap.counters
        assert "zeroed_total" in snap.names()

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("g", 7)
        reg.gauge("g", 9)  # last write wins
        assert reg.snapshot().gauge("g") == 9.0
        assert reg.snapshot().gauge("missing") is None

    def test_histogram(self):
        reg = MetricsRegistry()
        for v in (0.0001, 0.003, 0.003, 0.2, 99.0):
            reg.observe("h_seconds", v)
        h = reg.snapshot().histogram("h_seconds")
        assert h.count == 5
        assert h.sum == pytest.approx(0.0001 + 0.003 + 0.003 + 0.2 + 99.0)
        assert h.counts[-1] == 1  # 99s lands in +Inf
        assert 0 < h.quantile(0.5) <= 0.005
        assert h.mean == pytest.approx(h.sum / 5)

    def test_multithreaded_increments_merge(self):
        reg = MetricsRegistry()
        per_thread, nthreads = 5000, 8

        def work():
            for _ in range(per_thread):
                reg.counter("mt_total")
                reg.observe("mt_seconds", 0.001)

        threads = [threading.Thread(target=work) for _ in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap.counter("mt_total") == per_thread * nthreads
        assert snap.histogram("mt_seconds").count == per_thread * nthreads

    def test_reset_keeps_shards_usable(self):
        reg = MetricsRegistry()
        reg.counter("r_total", 3)
        reg.reset()
        assert reg.snapshot().counter("r_total") == 0.0
        reg.counter("r_total")  # same thread records into its old shard
        assert reg.snapshot().counter("r_total") == 1.0

    def test_null_recorder_is_inert(self):
        rec = NullRecorder()
        assert not rec.enabled
        rec.counter("x")
        rec.observe("y", 1.0)
        rec.gauge("z", 1.0)
        snap = rec.snapshot()
        assert not snap.counters and not snap.histograms and not snap.gauges


# ----------------------------------------------------------------------
# Cross-process snapshot serialization + merge (scatter-gather path)
# ----------------------------------------------------------------------

class TestSnapshotSerialization:
    @staticmethod
    def _populated_registry() -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("sc_total", 3)
        reg.counter("sc_total", 2, stage="E")
        reg.gauge("sc_gauge", 42, kind="x")
        for v in (0.0001, 0.003, 0.2, 99.0):
            reg.observe("sc_seconds", v)
        return reg

    def test_to_dict_from_dict_round_trip(self):
        snap = self._populated_registry().snapshot()
        data = snap.to_dict()
        # The wire form must be plain data (picklable AND json-able).
        restored = MetricsSnapshot.from_dict(json.loads(json.dumps(data)))
        assert restored.counters == snap.counters
        assert restored.gauges == snap.gauges
        assert set(restored.histograms) == set(snap.histograms)
        for key, h in snap.histograms.items():
            r = restored.histograms[key]
            assert (r.bounds, r.counts, r.count) == (h.bounds, h.counts, h.count)
            assert r.sum == pytest.approx(h.sum)

    def test_merge_snapshot_no_drift(self):
        # A worker's snapshot folded into an empty parent registry must
        # reproduce the worker's numbers exactly.
        worker = self._populated_registry().snapshot()
        parent = MetricsRegistry()
        parent.merge_snapshot(MetricsSnapshot.from_dict(worker.to_dict()))
        merged = parent.snapshot()
        assert merged.counters == worker.counters
        assert merged.gauges == worker.gauges
        for key, h in worker.histograms.items():
            m = merged.histograms[key]
            assert (m.bounds, m.counts, m.count) == (h.bounds, h.counts, h.count)
            assert m.sum == pytest.approx(h.sum)

    def test_merge_snapshot_adds_to_existing_series(self):
        parent = self._populated_registry()
        worker = self._populated_registry().snapshot()
        parent.merge_snapshot(worker)
        merged = parent.snapshot()
        assert merged.counter("sc_total") == 6.0
        assert merged.counter("sc_total", stage="E") == 4.0
        h = merged.histogram("sc_seconds")
        assert h.count == 8
        assert h.sum == pytest.approx(2 * worker.histogram("sc_seconds").sum)
        assert h.counts == tuple(
            2 * c for c in worker.histogram("sc_seconds").counts
        )
        # Gauges are last-write-wins, not additive.
        assert merged.gauge("sc_gauge", kind="x") == 42.0

    def test_merge_many_workers_matches_sum(self):
        parent = MetricsRegistry()
        for _ in range(5):
            parent.merge_snapshot(self._populated_registry().snapshot())
        merged = parent.snapshot()
        assert merged.counter_total("sc_total") == 5 * 5.0
        assert merged.histogram("sc_seconds").count == 5 * 4

    def test_histogram_rebucket_on_bound_mismatch(self):
        # A worker built with custom buckets still folds: sum/count stay
        # exact, counts are re-attributed by bucket upper bound.
        worker = MetricsRegistry()
        worker.observe("rb_seconds", 0.0004, buckets=(0.002, 2.0))
        worker.observe("rb_seconds", 1.5, buckets=(0.002, 2.0))
        worker.observe("rb_seconds", 500.0, buckets=(0.002, 2.0))
        parent = MetricsRegistry()
        parent.observe("rb_seconds", 0.01)  # default buckets
        parent.merge_snapshot(worker.snapshot())
        h = parent.snapshot().histogram("rb_seconds")
        assert h.count == 4
        assert h.sum == pytest.approx(0.0004 + 1.5 + 500.0 + 0.01)
        # 0.002-bucket lands at the default 0.0025 bound; 2.0 at 2.5;
        # the worker's +Inf count stays in +Inf.
        bounds = list(h.bounds)
        assert h.counts[bounds.index(0.0025)] == 1
        assert h.counts[bounds.index(2.5)] == 1
        assert h.counts[-1] == 1

    def test_null_recorder_merge_is_noop(self):
        rec = NullRecorder()
        rec.merge_snapshot(self._populated_registry().snapshot())
        snap = rec.snapshot()
        assert not snap.counters and not snap.histograms and not snap.gauges


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------

class TestTracer:
    def test_nesting_and_attrs(self):
        tr = Tracer()
        with tr.span("outer", a=1):
            with tr.span("inner"):
                pass
        spans = tr.spans()
        outer = next(s for s in spans if s.name == "outer")
        inner = next(s for s in spans if s.name == "inner")
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.parent_id is None
        assert outer.attrs == {"a": 1}
        assert outer.duration >= inner.duration >= 0

    def test_end_attrs_and_out_of_order_end(self):
        tr = Tracer()
        a = tr.start("a")
        b = tr.start("b")
        tr.end(a, rows=3)  # ends before its child: stack must recover
        tr.end(b)
        spans = {s.name: s for s in tr.spans()}
        assert spans["a"].attrs == {"rows": 3}
        assert tr.current_context() is None

    def test_cross_thread_adoption(self):
        tr = Tracer()
        seen = []
        with tr.span("parent"):
            ctx = tr.current_context()

            def worker():
                tr.adopt(ctx)
                with tr.span("child"):
                    pass
                seen.append(True)

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen
        spans = {s.name: s for s in tr.spans()}
        assert spans["child"].parent_id == spans["parent"].span_id
        assert spans["child"].trace_id == spans["parent"].trace_id

    def test_ring_bound_and_dropped(self):
        tr = Tracer(capacity=10)
        for i in range(25):
            with tr.span(f"s{i}"):
                pass
        assert len(tr.spans()) == 10
        assert tr.emitted == 25
        assert tr.dropped == 15
        # newest survive
        assert {s.name for s in tr.spans()} == {f"s{i}" for i in range(15, 25)}

    def test_walker_propagates_context_into_workers(self):
        with obs.enabled(metrics=False, tracing=True):
            tr = obs.tracer()
            with tr.span("caller"):
                ParallelTreeWalker(nthreads=NTHREADS).walk(
                    ["a", "b", "c"],
                    lambda item: ["a1"] if item == "a" else [],
                )
            spans = {s.name: s for s in tr.spans()}
        caller = spans["caller"]
        walk = spans["walker.walk"]
        assert walk.parent_id == caller.span_id
        assert walk.trace_id == caller.trace_id
        assert walk.attrs["items"] == 4

    def test_null_tracer(self):
        tr = NullTracer()
        assert not tr.enabled
        with tr.span("x") as s:
            assert s is None
        assert tr.spans() == []
        assert tr.current_context() is None


# ----------------------------------------------------------------------
# Slow-query log
# ----------------------------------------------------------------------

class TestSlowLog:
    def test_threshold_gates_recording(self):
        log = SlowQueryLog(threshold_ms=10.0)
        assert log.enabled
        assert not log.record(0.005, kind="query.run", detail="fast")
        assert log.record(0.050, kind="query.run", detail="slow", user="a")
        assert len(log) == 1
        (entry,) = log.entries()
        assert entry.elapsed == 0.050 and entry.user == "a"

    def test_disabled_log(self):
        log = SlowQueryLog(threshold_ms=None)
        assert not log.enabled
        assert not log.record(100.0, kind="query.run", detail="x")
        assert len(log) == 0

    def test_cap_bounds_entries(self):
        log = SlowQueryLog(threshold_ms=0.0, cap=5)
        for i in range(12):
            log.record(float(i + 1), kind="k", detail=f"d{i}")
        assert len(log) == 5
        assert log.entries()[0].detail == "d7"

    def test_recording_bumps_counter(self):
        with obs.enabled(metrics=True, slow_query_ms=0.0):
            obs.slow_log().record(1.0, kind="query.run", detail="x")
            snap = obs.snapshot()
            assert snap.counter(
                "gufi_slow_queries_total", kind="query.run"
            ) == 1.0


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

class TestExporters:
    def test_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("gufi_x_total", 3, tool="du")
        reg.gauge("gufi_g", 1.5)
        reg.observe("gufi_h_seconds", 0.003)
        text = to_prometheus(reg.snapshot())
        assert 'gufi_x_total{tool="du"} 3\n' in text
        assert "gufi_g 1.5\n" in text
        assert 'gufi_h_seconds_bucket{le="0.005"} 1' in text
        assert 'gufi_h_seconds_bucket{le="+Inf"} 1' in text
        assert "gufi_h_seconds_count 1" in text
        assert "gufi_h_seconds_sum 0.003" in text

    def test_render_metrics_table(self):
        reg = MetricsRegistry()
        reg.counter("gufi_x_total", 2)
        reg.observe("gufi_h_seconds", 0.01)
        out = render_metrics(reg.snapshot())
        assert "counters:" in out and "histograms:" in out
        assert "gufi_x_total" in out and "p99=" in out
        empty = render_metrics(NullRecorder().snapshot())
        assert "(no metrics recorded)" in empty

    def test_trace_jsonl(self, tmp_path):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner", stage="E"):
                pass
        text = spans_to_jsonl(tr.spans())
        lines = [json.loads(line) for line in text.splitlines()]
        assert len(lines) == 2
        assert {rec["name"] for rec in lines} == {"outer", "inner"}
        inner = next(r for r in lines if r["name"] == "inner")
        assert inner["attrs"] == {"stage": "E"}
        out = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(out, tr.spans()) == 2
        assert out.read_text().count("\n") == 2

    def test_render_slow_log(self):
        log = SlowQueryLog(threshold_ms=1.0)
        log.record(0.5, kind="query.run", detail="E=SELECT 1", user="bob")
        out = render_slow_log(log)
        assert "500.00ms" in out and "user=bob" in out
        assert "(none)" in render_slow_log(SlowQueryLog(threshold_ms=1.0))


# ----------------------------------------------------------------------
# Integration: instrumented subsystems
# ----------------------------------------------------------------------

class TestIntegration:
    def test_disabled_by_default(self, demo_index):
        with GUFIQuery(demo_index, nthreads=NTHREADS) as q:
            result = q.run(Q1_LIST_NAMES)
        assert result.stage_seconds is None
        assert not obs.metrics().enabled

    def test_query_counters_match_result(self, demo_tree, tmp_path):
        with obs.enabled(metrics=True):
            build = dir2index(
                demo_tree, tmp_path / "idx",
                opts=BuildOptions(nthreads=NTHREADS),
            )
            with GUFIQuery(build.index, nthreads=NTHREADS) as q:
                result = q.run(Q1_LIST_NAMES)
            snap = obs.snapshot()
        assert snap.counter("gufi_build_dirs_total") == build.dirs_created
        assert snap.counter("gufi_build_entries_total") == build.entries_inserted
        assert (
            snap.counter("gufi_query_dirs_visited_total")
            == result.dirs_visited
        )
        assert snap.counter("gufi_query_dbs_opened_total") == result.dbs_opened
        assert snap.counter("gufi_query_rows_total") == len(result.rows)
        assert snap.counter("gufi_query_runs_total", kind="query.run") == 1.0
        assert result.stage_seconds is not None
        assert result.stage_seconds["E"] > 0
        assert snap.counter(
            "gufi_query_stage_seconds_total", stage="E"
        ) == pytest.approx(result.stage_seconds["E"])
        h = snap.histogram("gufi_query_seconds", kind="query.run")
        assert h is not None and h.count == 1

    def test_plan_prune_and_elide_counters(self, demo_index):
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        filters = FindFilters(min_size=10**9)
        tools.find("/", filters)  # warm the cache (elision needs it)
        with obs.enabled(metrics=True):
            result = tools.find("/", filters)
            snap = obs.snapshot()
        assert result.dirs_pruned_by_plan > 0
        assert result.attaches_elided > 0
        assert (
            snap.counter("gufi_query_dirs_pruned_total")
            == result.dirs_pruned_by_plan
        )
        assert (
            snap.counter("gufi_query_attaches_elided_total")
            == result.attaches_elided
        )
        # warm run: the meta cache answered, and the deltas were folded
        assert snap.counter("gufi_session_cache_hits_total", kind="meta") > 0

    def test_existing_counter_fields_unchanged_by_obs(self, demo_index):
        """The public QueryResult fields must read the same whether the
        registry backs them or not."""
        spec = QuerySpec(E="SELECT name FROM pentries")
        with GUFIQuery(demo_index, nthreads=NTHREADS) as q:
            off = q.run(spec)
            with obs.enabled(metrics=True, tracing=True, slow_query_ms=0.0):
                on = q.run(spec)
        assert sorted(on.rows) == sorted(off.rows)
        assert on.dirs_visited == off.dirs_visited
        assert on.dirs_denied == off.dirs_denied
        assert on.dirs_errored == off.dirs_errored
        assert on.dirs_pruned_by_plan == off.dirs_pruned_by_plan
        assert on.attaches_elided == off.attaches_elided

    def test_walker_retry_counter(self):
        flaky = {"left": 3}

        def expand(item):
            if flaky["left"]:
                flaky["left"] -= 1
                raise OSError("transient")
            return []

        with obs.enabled(metrics=True):
            stats = ParallelTreeWalker(NTHREADS).walk(
                ["root"], expand,
                retry=RetryPolicy(retries=3, sleep=lambda s: None),
            )
            snap = obs.snapshot()
        assert stats.items_retried == 3
        assert snap.counter("gufi_walker_retries_total") == 3.0
        assert snap.counter("gufi_walker_items_errored_total") == 0.0

    def test_query_spans_nest_across_threads(self, demo_index):
        with obs.enabled(metrics=False, tracing=True):
            with GUFIQuery(demo_index, nthreads=NTHREADS) as q:
                q.run(Q1_LIST_NAMES)
            spans = obs.tracer().spans()
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name, []).append(s)
        run = by_name["query.run"][0]
        walk = next(
            s for s in by_name["walker.walk"] if s.parent_id == run.span_id
        )
        dirs = [s for s in by_name["query.dir"] if s.parent_id == walk.span_id]
        assert dirs, "per-directory spans must nest under the walk"
        assert all(s.trace_id == run.trace_id for s in dirs)
        sql = by_name["query.sql"]
        assert any(s.attrs.get("stage") == "E" for s in sql)
        # SQL spans nest under the directory being processed
        dir_ids = {s.span_id for s in by_name["query.dir"]}
        assert all(s.parent_id in dir_ids for s in sql)

    def test_slow_log_captures_query(self, demo_index):
        with obs.enabled(metrics=False, slow_query_ms=0.0):
            with GUFIQuery(demo_index, nthreads=NTHREADS) as q:
                q.run(Q1_LIST_NAMES)
            entries = obs.slow_log().entries()
        assert entries
        assert entries[0].kind == "query.run"
        assert "pentries" in entries[0].detail

    def test_enable_disable_lifecycle(self):
        obs.disable()
        assert not obs.metrics().enabled
        with obs.enabled(metrics=True, tracing=True, slow_query_ms=5.0):
            assert obs.metrics().enabled
            assert obs.tracer().enabled
            assert obs.slow_log().enabled
            obs.metrics().counter("x_total")
            assert obs.snapshot().counter("x_total") == 1.0
            obs.reset()
            assert obs.snapshot().counter("x_total") == 0.0
        assert not obs.metrics().enabled
        assert not obs.tracer().enabled
        assert not obs.slow_log().enabled
