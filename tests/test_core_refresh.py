"""Tests for the versioned index refresh / atomic-swap lifecycle."""

from __future__ import annotations

import pytest

from repro.core.build import BuildOptions
from repro.core.query import GUFIQuery, Q1_LIST_PATHS
from repro.core.refresh import IndexRefresher, diff_indexes
from tests.conftest import NTHREADS, build_demo_tree


@pytest.fixture
def refresher(tmp_path):
    tree = build_demo_tree()
    return tree, IndexRefresher(
        tree, tmp_path / "pub",
        opts=BuildOptions(nthreads=NTHREADS), keep_versions=2,
    )


class TestRefresh:
    def test_first_publish(self, refresher):
        tree, r = refresher
        record = r.refresh()
        assert record.version == 0
        assert record.dirs == tree.num_dirs
        idx = r.current()
        rows = GUFIQuery(idx, nthreads=NTHREADS).run(Q1_LIST_PATHS).rows
        assert len(rows) == tree.num_files + tree.num_symlinks

    def test_no_publish_yet(self, refresher):
        _, r = refresher
        with pytest.raises(FileNotFoundError):
            r.current()

    def test_swap_reflects_mutations(self, refresher):
        tree, r = refresher
        r.refresh()
        tree.create_file("/home/bob/fresh.dat", size=7,
                         uid=1002, gid=1002)
        r.refresh()
        rows = [
            x[0]
            for x in GUFIQuery(r.current(), nthreads=NTHREADS)
            .run(Q1_LIST_PATHS).rows
        ]
        assert "/home/bob/fresh.dat" in rows

    def test_old_version_still_queryable(self, refresher):
        """In-flight queries hold the old version open while new ones
        resolve the swapped link — both must work."""
        tree, r = refresher
        r.refresh()
        from repro.core.index import GUFIIndex

        old_idx = GUFIIndex.open(r.versions()[-1])
        tree.create_file("/home/bob/late.dat", size=1, uid=1002, gid=1002)
        r.refresh()
        old_rows = GUFIQuery(old_idx, nthreads=NTHREADS).run(Q1_LIST_PATHS).rows
        new_rows = GUFIQuery(r.current(), nthreads=NTHREADS).run(Q1_LIST_PATHS).rows
        assert len(new_rows) == len(old_rows) + 1

    def test_retention(self, refresher):
        tree, r = refresher
        for _ in range(4):
            r.refresh()
        versions = r.versions()
        assert len(versions) == 2  # keep_versions
        assert versions[-1].name == "v0003"
        # 'current' always resolves to the newest
        assert r.current_path.resolve().name == "v0003"

    def test_version_numbering_resumes(self, tmp_path):
        tree = build_demo_tree()
        r1 = IndexRefresher(tree, tmp_path / "pub",
                            opts=BuildOptions(nthreads=NTHREADS))
        r1.refresh()
        r2 = IndexRefresher(tree, tmp_path / "pub",
                            opts=BuildOptions(nthreads=NTHREADS))
        record = r2.refresh()
        assert record.version == 1

    def test_invalid_keep(self, tmp_path):
        with pytest.raises(ValueError):
            IndexRefresher(build_demo_tree(), tmp_path / "p", keep_versions=0)

    def test_snapshot_isolation(self, refresher):
        """Mutations racing the build must not tear the index: the
        build scans a snapshot."""
        tree, r = refresher
        r.refresh()
        # mutate between refreshes only; the refresh itself snapshots,
        # so its counts are internally consistent
        record = r.refresh()
        idx = r.current()
        assert idx.total_entries() == record.entries


class TestDiff:
    def test_diff_latest(self, refresher):
        tree, r = refresher
        r.refresh()
        tree.create_file("/home/bob/new1", size=100, uid=1002, gid=1002)
        tree.unlink("/public/readme")
        r.refresh()
        diff = r.diff_latest()
        assert diff.created == ["/home/bob/new1"]
        assert diff.removed == ["/public/readme"]
        assert diff.bytes_delta == 100 - 42

    def test_diff_detects_resize(self, refresher):
        tree, r = refresher
        r.refresh()
        tree.unlink("/home/bob/b.txt")
        tree.create_file("/home/bob/b.txt", size=999, uid=1002, gid=1002)
        r.refresh()
        diff = r.diff_latest()
        assert diff.resized == ["/home/bob/b.txt"]
        assert diff.bytes_delta == 999 - 300

    def test_diff_requires_two_versions(self, refresher):
        _, r = refresher
        r.refresh()
        with pytest.raises(ValueError):
            r.diff_latest()

    def test_diff_indexes_direct(self, refresher, tmp_path):
        tree, r = refresher
        r.refresh()
        tree.create_file("/home/bob/x", size=1, uid=1002, gid=1002)
        r.refresh()
        v_old, v_new = r.versions()
        from repro.core.index import GUFIIndex

        diff = diff_indexes(GUFIIndex.open(v_old), GUFIIndex.open(v_new))
        assert diff.total_mutations == 1
