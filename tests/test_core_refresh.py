"""Tests for the versioned index refresh / atomic-swap lifecycle."""

from __future__ import annotations

import pytest

from repro.core.build import BuildOptions
from repro.core.query import GUFIQuery, Q1_LIST_PATHS
from repro.core.refresh import IndexRefresher, diff_indexes
from repro.fs.changelog import ChangeJournal
from tests.conftest import NTHREADS, build_demo_tree


@pytest.fixture
def refresher(tmp_path):
    tree = build_demo_tree()
    return tree, IndexRefresher(
        tree, tmp_path / "pub",
        opts=BuildOptions(nthreads=NTHREADS), keep_versions=2,
    )


class TestRefresh:
    def test_first_publish(self, refresher):
        tree, r = refresher
        record = r.refresh()
        assert record.version == 0
        assert record.dirs == tree.num_dirs
        idx = r.current()
        rows = GUFIQuery(idx, nthreads=NTHREADS).run(Q1_LIST_PATHS).rows
        assert len(rows) == tree.num_files + tree.num_symlinks

    def test_no_publish_yet(self, refresher):
        _, r = refresher
        with pytest.raises(FileNotFoundError):
            r.current()

    def test_swap_reflects_mutations(self, refresher):
        tree, r = refresher
        r.refresh()
        tree.create_file("/home/bob/fresh.dat", size=7,
                         uid=1002, gid=1002)
        r.refresh()
        rows = [
            x[0]
            for x in GUFIQuery(r.current(), nthreads=NTHREADS)
            .run(Q1_LIST_PATHS).rows
        ]
        assert "/home/bob/fresh.dat" in rows

    def test_old_version_still_queryable(self, refresher):
        """In-flight queries hold the old version open while new ones
        resolve the swapped link — both must work."""
        tree, r = refresher
        r.refresh()
        from repro.core.index import GUFIIndex

        old_idx = GUFIIndex.open(r.versions()[-1])
        tree.create_file("/home/bob/late.dat", size=1, uid=1002, gid=1002)
        r.refresh()
        old_rows = GUFIQuery(old_idx, nthreads=NTHREADS).run(Q1_LIST_PATHS).rows
        new_rows = GUFIQuery(r.current(), nthreads=NTHREADS).run(Q1_LIST_PATHS).rows
        assert len(new_rows) == len(old_rows) + 1

    def test_retention(self, refresher):
        tree, r = refresher
        for _ in range(4):
            r.refresh()
        versions = r.versions()
        assert len(versions) == 2  # keep_versions
        assert versions[-1].name == "v0003"
        # 'current' always resolves to the newest
        assert r.current_path.resolve().name == "v0003"

    def test_version_numbering_resumes(self, tmp_path):
        tree = build_demo_tree()
        r1 = IndexRefresher(tree, tmp_path / "pub",
                            opts=BuildOptions(nthreads=NTHREADS))
        r1.refresh()
        r2 = IndexRefresher(tree, tmp_path / "pub",
                            opts=BuildOptions(nthreads=NTHREADS))
        record = r2.refresh()
        assert record.version == 1

    def test_invalid_keep(self, tmp_path):
        with pytest.raises(ValueError):
            IndexRefresher(build_demo_tree(), tmp_path / "p", keep_versions=0)

    def test_snapshot_isolation(self, refresher):
        """Mutations racing the build must not tear the index: the
        build scans a snapshot."""
        tree, r = refresher
        r.refresh()
        # mutate between refreshes only; the refresh itself snapshots,
        # so its counts are internally consistent
        record = r.refresh()
        idx = r.current()
        assert idx.total_entries() == record.entries


class TestDiff:
    def test_diff_latest(self, refresher):
        tree, r = refresher
        r.refresh()
        tree.create_file("/home/bob/new1", size=100, uid=1002, gid=1002)
        tree.unlink("/public/readme")
        r.refresh()
        diff = r.diff_latest()
        assert diff.created == ["/home/bob/new1"]
        assert diff.removed == ["/public/readme"]
        assert diff.bytes_delta == 100 - 42

    def test_diff_detects_resize(self, refresher):
        tree, r = refresher
        r.refresh()
        tree.unlink("/home/bob/b.txt")
        tree.create_file("/home/bob/b.txt", size=999, uid=1002, gid=1002)
        r.refresh()
        diff = r.diff_latest()
        assert diff.resized == ["/home/bob/b.txt"]
        assert diff.bytes_delta == 999 - 300

    def test_diff_requires_two_versions(self, refresher):
        _, r = refresher
        r.refresh()
        with pytest.raises(ValueError):
            r.diff_latest()

    def test_diff_indexes_direct(self, refresher, tmp_path):
        tree, r = refresher
        r.refresh()
        tree.create_file("/home/bob/x", size=1, uid=1002, gid=1002)
        r.refresh()
        v_old, v_new = r.versions()
        from repro.core.index import GUFIIndex

        diff = diff_indexes(GUFIIndex.open(v_old), GUFIIndex.open(v_new))
        assert diff.total_mutations == 1


class TestIncrementalRefresh:
    """refresh(mode="incremental"): changefeed apply to the published
    version in place, with overflow falling back to a full rebuild."""

    def _refresher(self, tmp_path, capacity=65536):
        tree = build_demo_tree()
        journal = ChangeJournal(capacity=capacity)
        return tree, journal, IndexRefresher(
            tree, tmp_path / "pub",
            opts=BuildOptions(nthreads=NTHREADS),
            keep_versions=2, journal=journal,
        )

    def test_incremental_applies_in_place(self, tmp_path):
        tree, journal, r = self._refresher(tmp_path)
        first = r.refresh()
        tree.create_file("/home/bob/inc.dat", size=9, uid=1002, gid=1002)
        record = r.refresh(mode="incremental")
        assert record.mode == "incremental"
        assert record.version == first.version  # no new version dir
        assert record.events_applied == 1
        assert record.cursor == journal.head
        assert len(r.versions()) == 1
        rows = [
            x[0]
            for x in GUFIQuery(r.current(), nthreads=NTHREADS)
            .run(Q1_LIST_PATHS).rows
        ]
        assert "/home/bob/inc.dat" in rows

    def test_incremental_with_no_changes_is_noop(self, tmp_path):
        _, _, r = self._refresher(tmp_path)
        r.refresh()
        record = r.refresh(mode="incremental")
        assert record.mode == "incremental"
        assert record.events_applied == 0

    def test_incremental_without_journal_raises(self, tmp_path):
        r = IndexRefresher(build_demo_tree(), tmp_path / "pub",
                           opts=BuildOptions(nthreads=NTHREADS))
        with pytest.raises(ValueError):
            r.refresh(mode="incremental")

    def test_unknown_mode_raises(self, tmp_path):
        _, _, r = self._refresher(tmp_path)
        with pytest.raises(ValueError):
            r.refresh(mode="differential")

    def test_incremental_before_first_publish_falls_back(self, tmp_path):
        tree, _, r = self._refresher(tmp_path)
        tree.create_file("/public/early.txt", size=1, uid=0, gid=0)
        record = r.refresh(mode="incremental")
        assert record.mode == "full"
        assert record.version == 0

    def test_overflow_falls_back_to_full_rebuild(self, tmp_path):
        tree, journal, r = self._refresher(tmp_path, capacity=3)
        first = r.refresh()
        for i in range(8):  # far past the journal bound
            tree.create_file(f"/public/of{i}.txt", size=1, uid=0, gid=0)
        assert journal.overflowed(first.cursor)
        record = r.refresh(mode="incremental")
        assert record.mode == "full"
        assert record.version == first.version + 1
        rows = [
            x[0]
            for x in GUFIQuery(r.current(), nthreads=NTHREADS)
            .run(Q1_LIST_PATHS).rows
        ]
        assert "/public/of7.txt" in rows


class TestDiffMoves:
    """diff_latest with a journal: renames are one move each, not a
    create + remove pair (ISSUE satellite: IndexDiff rename-as-move)."""

    def _refresher(self, tmp_path):
        tree = build_demo_tree()
        journal = ChangeJournal()
        return tree, IndexRefresher(
            tree, tmp_path / "pub",
            opts=BuildOptions(nthreads=NTHREADS),
            keep_versions=2, journal=journal,
        )

    def test_file_rename_is_one_move(self, tmp_path):
        tree, r = self._refresher(tmp_path)
        r.refresh()
        tree.rename("/public/readme", "/home/bob/readme")
        r.refresh()
        diff = r.diff_latest()
        assert diff.moved == [("/public/readme", "/home/bob/readme")]
        assert diff.created == [] and diff.removed == []
        assert diff.bytes_delta == 0
        assert diff.total_mutations == 1

    def test_dir_rename_moves_every_descendant(self, tmp_path):
        tree, r = self._refresher(tmp_path)
        r.refresh()
        tree.rename("/home/bob", "/bobhome")
        r.refresh()
        diff = r.diff_latest()
        assert ("/home/bob/b.txt", "/bobhome/b.txt") in diff.moved
        assert (
            "/home/bob/secret/s.key", "/bobhome/secret/s.key"
        ) in diff.moved
        assert diff.created == [] and diff.removed == []

    def test_chained_renames_compose(self, tmp_path):
        tree, r = self._refresher(tmp_path)
        r.refresh()
        tree.rename("/public/readme", "/public/r1")
        tree.rename("/public/r1", "/public/r2")
        r.refresh()
        diff = r.diff_latest()
        assert diff.moved == [("/public/readme", "/public/r2")]

    def test_rename_plus_resize_still_a_move(self, tmp_path):
        """A move whose target also changed size contributes the size
        delta, once."""
        tree, r = self._refresher(tmp_path)
        r.refresh()
        tree.rename("/public/readme", "/public/r2")
        tree.unlink("/public/r2")
        tree.create_file("/public/r2", size=142, uid=0, gid=0)
        r.refresh()
        diff = r.diff_latest()
        # readme (42B) vanished into an unrelated recreate: path diff
        # rules apply — the recreated file is not the moved inode but
        # the path-keyed diff cannot tell, and the paper's passive
        # query only needs byte-conservation:
        assert diff.bytes_delta == 142 - 42

    def test_without_journal_rename_is_create_plus_remove(self, tmp_path):
        tree = build_demo_tree()
        r = IndexRefresher(tree, tmp_path / "pub",
                           opts=BuildOptions(nthreads=NTHREADS),
                           keep_versions=2)
        r.refresh()
        tree.rename("/public/readme", "/home/bob/readme")
        r.refresh()
        diff = r.diff_latest()
        assert diff.moved == []
        assert diff.created == ["/home/bob/readme"]
        assert diff.removed == ["/public/readme"]

    def test_journal_retained_across_retirement_window(self, tmp_path):
        """Three full refreshes with keep_versions=2: the oldest
        version's events may be trimmed, but the window between the
        two *retained* versions must still diff as moves."""
        tree, r = self._refresher(tmp_path)
        r.refresh()
        tree.create_file("/public/x1", size=1, uid=0, gid=0)
        r.refresh()
        tree.rename("/public/x1", "/public/x2")
        r.refresh()
        diff = r.diff_latest()
        assert diff.moved == [("/public/x1", "/public/x2")]
