"""CLI tests for the search / full-stats / split-trace subcommands and
identity flags."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.build import BuildOptions, dir2index
from repro.scan.scanners import TreeWalkScanner
from repro.scan.trace import read_trace, write_trace
from tests.conftest import NTHREADS, build_demo_tree


@pytest.fixture
def index_root(tmp_path):
    tree = build_demo_tree()
    dir2index(tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS))
    return str(tmp_path / "idx")


def run_cli(*args) -> int:
    return main(list(args))


class TestSearchCommand:
    def test_glob_search(self, index_root, capsys):
        assert run_cli("search", index_root, "*.txt", "-n", "2") == 0
        out = capsys.readouterr().out
        assert "/home/bob/b.txt" in out
        assert "a.txt" in out

    def test_search_as_user(self, index_root, capsys):
        assert run_cli(
            "search", index_root, "*.txt",
            "--uid", "1002", "--gid", "1002", "-n", "2",
        ) == 0
        out = capsys.readouterr().out
        assert "b.txt" in out
        assert "a.txt" not in out  # alice's private home

    def test_size_filter(self, index_root, capsys):
        assert run_cli("search", index_root, "type:f size>>600", "-n", "2") == 0
        out = capsys.readouterr().out
        assert "d.h5" in out and "p.c" in out
        assert "b.txt" not in out

    def test_older_with_now(self, index_root, capsys):
        assert run_cli(
            "search", index_root, "older:1d", "--now", "10000000", "-n", "2"
        ) == 0
        assert capsys.readouterr().out.strip()  # everything is 'old'


class TestStatsFull:
    def test_full_report(self, index_root, capsys):
        assert run_cli("stats", index_root, "--full", "-n", "2") == 0
        out = capsys.readouterr().out
        assert "directories :" in out
        assert "top users by bytes:" in out

    def test_full_report_scoped_user(self, index_root, capsys):
        assert run_cli(
            "stats", index_root, "--full", "--uid", "1002", "--gid", "1002",
            "-n", "2",
        ) == 0
        out_user = capsys.readouterr().out
        assert run_cli("stats", index_root, "--full", "-n", "2") == 0
        out_root = capsys.readouterr().out
        # user report covers strictly less data
        def dirs(line_block):
            for line in line_block.splitlines():
                if line.strip().startswith("directories"):
                    return int(line.split(":")[1].split("(")[0].replace(",", ""))
            raise AssertionError("no directories line")
        assert dirs(out_user) < dirs(out_root)


class TestSplitTraceCommand:
    def test_split(self, tmp_path, capsys):
        stanzas = TreeWalkScanner(build_demo_tree(), nthreads=1).scan("/").stanzas
        trace = tmp_path / "t.trace"
        write_trace(stanzas, trace)
        assert run_cli(
            "split-trace", str(trace), str(tmp_path / "parts"), "-p", "3"
        ) == 0
        parts = capsys.readouterr().out.strip().splitlines()
        assert len(parts) == 3
        total = sum(len(list(read_trace(p))) for p in parts)
        assert total == len(stanzas)


class TestExperimentsCommand:
    def test_ingest_experiment(self, capsys, monkeypatch):
        # the lightest experiment; checks the dispatch wiring
        assert run_cli("experiments", "ingest") == 0
        out = capsys.readouterr().out
        assert "ingest rates" in out.lower()
