"""Deterministic fault-injection layer: plan semantics, parsing, and
the VFSTree read hooks."""

from __future__ import annotations

import threading

import pytest

from repro.fs.tree import VFSTree
from repro.scan.faults import (
    BuildCrash,
    Fault,
    FaultPlan,
    InjectedFault,
)
from repro.scan.walker import FatalWalkError


class TestFaultSemantics:
    def test_io_at_fires_exactly_once(self):
        plan = FaultPlan.io_at("s", 3)
        plan.fire("s")
        plan.fire("s")
        with pytest.raises(InjectedFault):
            plan.fire("s")
        for _ in range(5):
            plan.fire("s")  # healed
        assert plan.count("s") == 8
        assert [f.invocation for f in plan.fired] == [3]

    def test_io_times_window(self):
        plan = FaultPlan.io_at("s", 2, times=3)
        plan.fire("s")
        for _ in range(3):
            with pytest.raises(InjectedFault):
                plan.fire("s")
        plan.fire("s")  # invocation 5: healed
        assert len(plan.fired) == 3

    def test_crash_is_fatal_and_single_shot(self):
        plan = FaultPlan.crash_at("s", 1)
        with pytest.raises(BuildCrash):
            plan.fire("s")
        # BuildCrash must abort walks, so it is a FatalWalkError
        assert issubclass(BuildCrash, FatalWalkError)
        plan.fire("s")  # a crash plan never re-fires

    def test_path_keyed_faults(self):
        plan = FaultPlan.flaky_paths("s", ["/a", "/b"], times=2)
        plan.fire("s", "/c")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.fire("s", "/a")
        plan.fire("s", "/a")  # /a healed after 2 failures
        with pytest.raises(InjectedFault):
            plan.fire("s", "/b")

    def test_sites_count_independently(self):
        plan = FaultPlan.io_at("a", 2)
        plan.fire("b")
        plan.fire("b")
        plan.fire("a")  # site a is only at invocation 1
        with pytest.raises(InjectedFault):
            plan.fire("a")

    def test_sample_flaky_deterministic(self):
        paths = [f"/d{i}" for i in range(100)]
        p1 = FaultPlan.sample_flaky("s", paths, 0.2, seed=7)
        p2 = FaultPlan.sample_flaky("s", paths, 0.2, seed=7)
        chosen1 = sorted(f.path for f in p1.faults)
        chosen2 = sorted(f.path for f in p2.faults)
        assert chosen1 == chosen2
        assert len(chosen1) == 20
        p3 = FaultPlan.sample_flaky("s", paths, 0.2, seed=8)
        assert sorted(f.path for f in p3.faults) != chosen1

    def test_reset_rearms(self):
        plan = FaultPlan.crash_at("s", 1)
        with pytest.raises(BuildCrash):
            plan.fire("s")
        plan.reset()
        with pytest.raises(BuildCrash):
            plan.fire("s")

    def test_thread_safety_exactly_one_firing(self):
        """Concurrent firing: the at=N trigger fires exactly once no
        matter how many threads race the counter."""
        plan = FaultPlan.io_at("s", 50)
        hits = []
        lock = threading.Lock()

        def hammer():
            for _ in range(25):
                try:
                    plan.fire("s")
                except InjectedFault:
                    with lock:
                        hits.append(1)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(hits) == 1
        assert plan.count("s") == 100

    def test_invalid_faults_rejected(self):
        with pytest.raises(ValueError):
            Fault(kind="nope", site="s", at=1)
        with pytest.raises(ValueError):
            Fault(kind="io", site="s")  # neither at nor path
        with pytest.raises(ValueError):
            Fault(kind="io", site="s", at=1, path="/x")  # both
        with pytest.raises(ValueError):
            Fault(kind="io", site="s", at=0)
        with pytest.raises(ValueError):
            Fault(kind="io", site="s", at=1, times=0)


class TestParse:
    def test_parse_crash(self):
        plan = FaultPlan.parse("crash:build_dir_db:12")
        (f,) = plan.faults
        assert (f.kind, f.site, f.at, f.times) == ("crash", "build_dir_db", 12, 1)

    def test_parse_multi_with_times(self):
        plan = FaultPlan.parse("io:vfs.readdir:3x2; crash:walker.expand:9")
        assert len(plan.faults) == 2
        assert plan.faults[0].times == 2
        assert plan.faults[1].kind == "crash"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("bogus")
        with pytest.raises(ValueError):
            FaultPlan.parse("")
        with pytest.raises(ValueError):
            FaultPlan.parse("io:site:notanumber")


class TestVFSTreeHooks:
    def test_readdir_fault_fires_and_heals(self):
        t = VFSTree()
        t.mkdir("/d")
        t.create_file("/d/f")
        t.set_fault_plan(FaultPlan.flaky_paths("vfs.readdir", ["/d"], times=1))
        with pytest.raises(InjectedFault):
            t.readdir("/d")
        assert [e.name for e in t.readdir("/d")] == ["f"]

    def test_get_inode_fault(self):
        t = VFSTree()
        t.mkdir("/d")
        t.set_fault_plan(FaultPlan.io_at("vfs.get_inode", 1))
        with pytest.raises(InjectedFault):
            t.get_inode("/d")
        assert t.get_inode("/d").ftype.value == "d"

    def test_detach(self):
        t = VFSTree()
        t.mkdir("/d")
        t.set_fault_plan(FaultPlan.io_at("vfs.readdir", 1))
        t.set_fault_plan(None)
        t.readdir("/d")  # no fault

    def test_snapshot_does_not_inherit_plan(self):
        from repro.fs.snapshot import snapshot

        t = VFSTree()
        t.mkdir("/d")
        t.set_fault_plan(FaultPlan.io_at("vfs.readdir", 1))
        frozen = snapshot(t)
        frozen.readdir("/d")  # clone reads clean
        with pytest.raises(InjectedFault):
            t.readdir("/d")  # live tree still faulted
