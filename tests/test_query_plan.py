"""Query-planning tests: stats-gate soundness, depth windows, attach
elision, and the ``run_single`` alignment fix.

The planner's contract is the rollup security theorem's discipline
applied to performance: a planned run must return *exactly* the rows
an unplanned run returns, for every credential — pruning may only skip
work, never change answers or widen visibility. The property tests
here drive random search strings over random namespaces for root and
unprivileged users to check that end to end.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.build import BuildOptions, dir2index
from repro.core.index import DirMeta, DirStats
from repro.core.plan import QueryPlan, plan_for
from repro.core.query import GUFIQuery, QuerySpec
from repro.core.rollup import rollup
from repro.core.search import parse
from repro.core.tools import FindFilters, GUFITools
from repro.core.tsummary import build_tsummary
from repro.fs.permissions import Credentials
from repro.fs.tree import VFSTree

from tests.conftest import ALICE, NTHREADS
from tests.test_properties import CREDS, materialize, tree_descriptions

NOW = 1_700_000_000
DAY = 86400


def _meta(stats: DirStats | None) -> DirMeta:
    return DirMeta(
        inode=1, mode=0o755, uid=0, gid=0,
        rolledup=False, rollup_entries=0, stats=stats,
    )


def _stats(**over) -> DirStats:
    base = dict(
        totfiles=3, totlinks=0,
        minsize=10, maxsize=1000,
        minmtime=NOW - 30 * DAY, maxmtime=NOW - 10 * DAY,
        minuid=1001, maxuid=1002, mingid=1001, maxgid=1002,
        maxdepth=None,
    )
    base.update(over)
    return DirStats(**base)


class TestDirCanMatch:
    def test_no_stats_never_gates(self):
        plan = QueryPlan(min_size=10**9, ftype="f")
        assert plan.dir_can_match(_meta(None))

    def test_no_predicates_gates_only_empty_dirs(self):
        plan = QueryPlan()
        assert plan.dir_can_match(_meta(_stats()))
        assert not plan.dir_can_match(
            _meta(_stats(totfiles=0, totlinks=0,
                         minsize=None, maxsize=None,
                         minmtime=None, maxmtime=None,
                         minuid=None, maxuid=None,
                         mingid=None, maxgid=None))
        )

    def test_size_gate_prunes(self):
        plan = QueryPlan(min_size=5000)
        assert not plan.dir_can_match(_meta(_stats(maxsize=1000)))
        assert plan.dir_can_match(_meta(_stats(maxsize=5001)))
        plan = QueryPlan(max_size=5)
        assert not plan.dir_can_match(_meta(_stats(minsize=10)))

    def test_size_gate_unsound_with_links_present(self):
        # minsize/maxsize bound files only; a directory holding links
        # must not be size-gated unless type:f excludes the links
        stats = _stats(maxsize=1000, totlinks=2)
        assert QueryPlan(min_size=5000).dir_can_match(_meta(stats))
        assert not QueryPlan(min_size=5000, ftype="f").dir_can_match(
            _meta(stats)
        )
        # and a type:l query never size-gates
        assert QueryPlan(min_size=5000, ftype="l").dir_can_match(_meta(stats))

    def test_count_gates(self):
        assert not QueryPlan(ftype="f").dir_can_match(
            _meta(_stats(totfiles=0, totlinks=2, minsize=None, maxsize=None))
        )
        assert not QueryPlan(ftype="l").dir_can_match(
            _meta(_stats(totlinks=0))
        )
        assert QueryPlan(ftype="l").dir_can_match(
            _meta(_stats(totlinks=1))
        )

    def test_mtime_window_gates(self):
        assert not QueryPlan(mtime_before=NOW - 40 * DAY).dir_can_match(
            _meta(_stats())  # everything newer than the cutoff
        )
        assert not QueryPlan(mtime_after=NOW - 5 * DAY).dir_can_match(
            _meta(_stats())  # everything older than the cutoff
        )
        assert QueryPlan(
            mtime_before=NOW, mtime_after=NOW - 40 * DAY
        ).dir_can_match(_meta(_stats()))

    def test_uid_gid_gates(self):
        assert not QueryPlan(uid=2000).dir_can_match(_meta(_stats()))
        assert QueryPlan(uid=1001).dir_can_match(_meta(_stats()))
        assert not QueryPlan(gid=7).dir_can_match(_meta(_stats()))

    def test_null_bound_disables_gate(self):
        assert QueryPlan(min_size=10**9).dir_can_match(
            _meta(_stats(maxsize=None))
        )
        assert QueryPlan(mtime_after=NOW).dir_can_match(
            _meta(_stats(maxmtime=None))
        )
        assert QueryPlan(uid=2000).dir_can_match(
            _meta(_stats(minuid=None))
        )

    def test_not_entries_shaped_never_gates(self):
        plan = QueryPlan(min_size=10**9, entries_shaped=False)
        assert plan.dir_can_match(_meta(_stats(maxsize=1)))


class TestDepthWindow:
    def test_wants_level(self):
        plan = QueryPlan(min_level=1, max_level=2)
        assert [plan.wants_level(d) for d in range(4)] == [
            False, True, True, False,
        ]

    def test_descend_stops_at_max_level(self):
        plan = QueryPlan(max_level=2)
        assert plan.descend_allowed(1)
        assert not plan.descend_allowed(2)

    def test_min_level_with_shallow_subtree_cuts_descent(self):
        plan = QueryPlan(min_level=5)
        assert plan.descend_allowed(1, subtree_rel_maxdepth=None)
        assert plan.descend_allowed(1, subtree_rel_maxdepth=5)
        assert not plan.descend_allowed(1, subtree_rel_maxdepth=4)


class TestPlanFor:
    def test_maps_prunable_fields(self):
        f = FindFilters(
            name_like="%x%", ftype="f", min_size=1, max_size=2,
            uid=3, gid=4, mtime_before=5, mtime_after=6,
            min_level=1, max_level=2,
        )
        p = plan_for(f)
        assert (p.min_size, p.max_size) == (1, 2)
        assert (p.uid, p.gid) == (3, 4)
        assert (p.mtime_before, p.mtime_after) == (5, 6)
        assert (p.min_level, p.max_level) == (1, 2)
        assert p.ftype == "f"
        assert p.entries_shaped


class TestStatsReading:
    def test_warm_cache_carries_stats(self, demo_index):
        meta = demo_index.dir_meta("/home/alice")
        stats = meta.stats
        assert stats is not None
        assert stats.totfiles == 1
        assert stats.minsize == stats.maxsize == 100

    def test_rolled_up_stats_cover_subtree(self, demo_tree, tmp_path):
        idx = dir2index(
            demo_tree, tmp_path / "i", opts=BuildOptions(nthreads=NTHREADS)
        ).index
        rollup(idx, nthreads=NTHREADS)
        meta = idx.dir_meta("/home/alice")
        assert meta.rolledup
        stats = meta.stats
        # bounds cover a.txt (100) and sub/deep.dat (250)
        assert stats.totfiles == 2
        assert stats.minsize == 100
        assert stats.maxsize == 250

    def test_maxdepth_from_tsummary(self, demo_index):
        build_tsummary(demo_index, "/")
        demo_index.invalidate_cache()
        stats = demo_index.dir_meta("/").stats
        assert stats.maxdepth is not None
        assert stats.maxdepth >= 2  # /home/alice/sub et al.


class TestEnginePruning:
    def test_selective_query_elides_warm_attaches(self, demo_index):
        filters = FindFilters(min_size=10**9)
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        cold = tools.find("/", filters)  # warms the cache
        warm = tools.find("/", filters)
        off = tools.find("/", filters, planned=False)
        assert warm.rows == off.rows == cold.rows == []
        assert warm.dirs_pruned_by_plan > 0
        assert warm.attaches_elided > 0
        assert warm.dbs_opened < off.dbs_opened

    def test_pruned_run_matches_unplanned(self, demo_index):
        tools = GUFITools(demo_index, creds=ALICE, nthreads=NTHREADS)
        filters = FindFilters(min_size=200, ftype="f")
        on = tools.find("/", filters)
        off = tools.find("/", filters, planned=False)
        assert sorted(on.rows) == sorted(off.rows)
        assert on.rows  # deep.dat (250), b.txt (300), p.c, d.h5

    def test_depth_window_limits_levels(self, demo_index):
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        all_rows = tools.find("/").rows
        # only entries whose parent dir is at level <= 1 below /
        shallow = tools.find("/", FindFilters(max_level=1)).rows
        assert set(shallow) < set(all_rows)
        paths = {r[0] for r in shallow}
        # /public is level 1 — its entries are in the window
        assert "/public/readme" in paths
        # /home/bob is level 2 — its entries are not
        assert "/home/bob/b.txt" not in paths

    def test_depth_window_exact_partition(self, demo_index):
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        full = sorted(tools.find("/").rows)
        by_level = []
        for lv in range(0, 5):
            r = tools.find(
                "/", FindFilters(min_level=lv, max_level=lv)
            )
            by_level.extend(r.rows)
        assert sorted(by_level) == full

    def test_max_level_stops_descent(self, demo_index):
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        r = tools.find("/", FindFilters(max_level=1))
        # /, /home, /proj, /public + their direct children are visited;
        # nothing at level 2+ (e.g. /home/alice/sub) is walked
        unplanned = tools.find("/")
        assert r.dirs_visited < unplanned.dirs_visited

    def test_min_level_skips_shallow_processing(self, demo_index):
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        r = tools.find("/", FindFilters(min_level=2))
        paths = {row[0] for row in r.rows}
        assert "/public/readme" not in paths  # level-1 dir's entry
        assert "/home/bob/b.txt" in paths

    def test_tsummary_maxdepth_cuts_subtree_for_min_level(self, demo_index):
        build_tsummary(demo_index, "/")
        demo_index.invalidate_cache()
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        tools.find("/")  # warm
        deep = tools.find("/", FindFilters(min_level=10))
        assert deep.rows == []
        # the tree is only ~3 levels deep: the root's tsummary proves
        # min_level=10 unreachable, so descent is cut immediately
        assert deep.dirs_visited <= 1

    def test_search_terms_compile_to_plan(self, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        parsed = parse("size>>1g", now=NOW)
        q.run(parsed.to_spec())  # warm the cache
        on = q.run(parsed.to_spec(), plan=parsed.to_plan())
        off = q.run(parsed.to_spec())
        assert on.rows == off.rows == []
        assert on.dirs_pruned_by_plan > 0

    def test_level_terms_parse(self):
        f = parse("size>>1m minlevel:1 maxlevel:3", now=NOW).filters
        assert (f.min_level, f.max_level) == (1, 3)
        with pytest.raises(Exception):
            parse("minlevel:x")

    def test_plan_ignored_without_stages(self, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        r = q.run(QuerySpec(), plan=QueryPlan(min_size=10**9))
        assert r.dirs_pruned_by_plan == 0


class TestRunSingleAlignment:
    def test_missing_dir_raises(self, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        with pytest.raises(FileNotFoundError):
            q.run_single(QuerySpec(E="SELECT name FROM pentries"), "/nope")

    def test_corrupt_db_counts_instead_of_raising(self, demo_index):
        db = demo_index.db_path("/public")
        db.write_bytes(b"this is not a sqlite database, not even close")
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        r = q.run_single(QuerySpec(E="SELECT name FROM pentries"), "/public")
        assert r.dirs_errored == 1
        assert r.dbs_opened == 0
        assert r.rows == []

    def test_corrupt_db_matches_walk_semantics(self, demo_index):
        db = demo_index.db_path("/public")
        db.write_bytes(b"garbage" * 100)
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        walk = q.run(QuerySpec(E="SELECT name FROM pentries"), "/")
        single = q.run_single(
            QuerySpec(E="SELECT name FROM pentries"), "/public"
        )
        assert walk.dirs_errored == 1
        assert single.dirs_errored == 1

    def test_t_skipped_without_tsummary_rows(self, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        spec = QuerySpec(
            T="SELECT totsize FROM tsummary WHERE rectype = 0",
            E="SELECT name FROM pentries",
        )
        r = q.run_single(spec, "/home/alice")
        # no tsummary rows: T contributes nothing, E still runs
        assert r.rows == [("a.txt",)]

    def test_t_prunes_s_and_e_like_walk(self, demo_index):
        build_tsummary(demo_index, "/home/alice")
        demo_index.invalidate_cache()
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        spec = QuerySpec(
            T="SELECT totsize FROM tsummary WHERE rectype = 0",
            E="SELECT name FROM pentries",
        )
        single = q.run_single(spec, "/home/alice")
        walk = q.run(spec, "/home/alice")
        assert single.rows == walk.rows  # T rows only, E pruned
        assert len(single.rows) == 1
        no_prune = q.run_single(
            QuerySpec(
                T="SELECT totsize FROM tsummary WHERE rectype = 0",
                E="SELECT name FROM pentries",
                t_no_prune=True,
            ),
            "/home/alice",
        )
        assert len(no_prune.rows) == 2

    def test_plan_applies_to_single_dir(self, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        spec = QuerySpec(E="SELECT name FROM pentries")
        q.run_single(spec, "/home/alice")  # warm the meta cache
        r = q.run_single(spec, "/home/alice", plan=QueryPlan(min_size=10**9))
        assert r.rows == []
        assert r.dirs_pruned_by_plan == 1
        assert r.attaches_elided == 1
        assert r.dbs_opened == 0


# ----------------------------------------------------------------------
# Property tests: planned == unplanned for every credential
# ----------------------------------------------------------------------

_SEARCH_TERMS = [
    None,
    "size>>500k",
    "size<<100",
    "user:1001",
    "group:100",
    "older:90d",
    "newer:30d",
    "type:f",
    "type:l",
    "name:f1*",
    "maxlevel:1",
    "minlevel:2",
    "minlevel:1 maxlevel:2",
]


@st.composite
def search_strings(draw):
    terms = draw(
        st.lists(
            st.sampled_from([t for t in _SEARCH_TERMS if t]),
            min_size=1, max_size=3, unique=True,
        )
    )
    return " ".join(terms)


common = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPlannedEqualsUnplanned:
    @common
    @given(desc=tree_descriptions(), query=search_strings(),
           rolled=st.booleans())
    def test_identical_rows_for_every_user(
        self, desc, query, rolled, tmp_path_factory
    ):
        tree = materialize(desc)
        root = tmp_path_factory.mktemp("plan")
        idx = dir2index(tree, root / "i", opts=BuildOptions(nthreads=2)).index
        build_tsummary(idx, "/")
        if rolled:
            rollup(idx, nthreads=2)
        idx.invalidate_cache()
        parsed = parse(query, now=NOW)
        spec = parsed.to_spec()
        plan = parsed.to_plan()
        # The baseline keeps the (semantic) depth window but switches
        # every stats gate off: exactly what the full plan must be
        # observationally identical to.
        baseline = QueryPlan(
            min_level=plan.min_level,
            max_level=plan.max_level,
            entries_shaped=False,
        )
        for creds in CREDS:
            q = GUFIQuery(idx, creds=creds, nthreads=2)
            cold_on = q.run(spec, plan=plan)
            off = q.run(spec, plan=baseline)
            warm_on = q.run(spec, plan=plan)
            assert sorted(cold_on.rows) == sorted(off.rows), (creds, query)
            assert sorted(warm_on.rows) == sorted(off.rows), (creds, query)
            # pruning only ever skips work
            assert warm_on.dbs_opened <= off.dbs_opened

    @common
    @given(desc=tree_descriptions(), query=search_strings())
    def test_find_planned_flag_is_invisible(
        self, desc, query, tmp_path_factory
    ):
        tree = materialize(desc)
        root = tmp_path_factory.mktemp("plan")
        idx = dir2index(tree, root / "i", opts=BuildOptions(nthreads=2)).index
        filters = parse(query, now=NOW).filters
        for creds in (Credentials(uid=0, gid=0), CREDS[1]):
            tools = GUFITools(idx, creds=creds, nthreads=2)
            on = tools.find("/", filters, planned=True)
            off = tools.find("/", filters, planned=False)
            assert sorted(on.rows) == sorted(off.rows), (creds, query)


class TestPlanningNeverWidensVisibility:
    def test_unreadable_dir_stays_invisible_with_plan(self):
        # A denied directory's stats must not leak into results even
        # when the plan could prove it matches: permission checks run
        # before any plan logic.
        tree = VFSTree()
        tree.mkdir("/secret", mode=0o700, uid=1002, gid=1002)
        tree.create_file(
            "/secret/big", size=10**10, mode=0o644, uid=1002, gid=1002
        )
        import tempfile

        with tempfile.TemporaryDirectory() as d:
            idx = dir2index(
                tree, d + "/i", opts=BuildOptions(nthreads=2)
            ).index
            tools = GUFITools(idx, creds=ALICE, nthreads=2)
            filters = FindFilters(min_size=10**9)
            on = tools.find("/", filters)
            off = tools.find("/", filters, planned=False)
            assert on.rows == off.rows == []
            assert on.dirs_denied == off.dirs_denied == 1


class TestNullStatsConservative:
    def test_nulled_summary_disables_gating(self, demo_index):
        # Corrupt the stats columns (NULL them out) in one shard: the
        # planner must fall back to processing that directory.
        db = demo_index.db_path("/home/bob")
        conn = sqlite3.connect(db)
        conn.execute(
            "UPDATE summary SET minsize = NULL, maxsize = NULL "
            "WHERE rectype = 0"
        )
        conn.commit()
        conn.close()
        demo_index.invalidate_cache()
        assert demo_index.dir_meta("/home/bob").stats is None
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        filters = FindFilters(min_size=10**9)
        on = tools.find("/", filters)
        off = tools.find("/", filters, planned=False)
        assert on.rows == off.rows == []
