"""Tests for permissions-based rollup: the four-condition matrix,
merge mechanics, query invariance, limits, unrollup restoration, and
the security property that rollup never widens visibility."""

from __future__ import annotations

import pytest

from repro.core import db as dbmod
from repro.core.build import BuildOptions, dir2index
from repro.core.query import GUFIQuery, Q1_LIST_PATHS, Q2_DIR_SIZES, QuerySpec
from repro.core.rollup import (
    largest_visible_db_bytes,
    rollup,
    rollup_compatible,
    unrollup_dir,
    visible_db_count,
)
from repro.fs.permissions import Credentials
from repro.fs.tree import VFSTree
from tests.conftest import ALICE, BOB, CAROL_IN_PROJ, NTHREADS


class TestConditions:
    def test_cond1_world_rx(self):
        # different owners are fine when both trees are world-visible
        assert rollup_compatible(0o755, 1, 1, 0o755, 2, 2)
        assert not rollup_compatible(0o750, 1, 1, 0o755, 2, 2)
        assert not rollup_compatible(0o755, 1, 1, 0o750, 2, 2)

    def test_cond1_no_fallthrough_corner_guarded(self):
        # 0o705 denies its group what it grants the world; merging it
        # under a 0o755 parent would hand group members access POSIX's
        # no-fallthrough rule withheld. The exact reader-set guard
        # refuses the pair even though the paper's literal condition 1
        # would accept it.
        assert not rollup_compatible(0o755, 1, 1, 0o705, 1, 1)
        # the reverse direction is safe: the 0o705 parent's readers
        # are a subset of the 0o755 child's
        assert rollup_compatible(0o705, 1, 1, 0o755, 1, 1)

    def test_cond2_exact_match(self):
        assert rollup_compatible(0o700, 5, 6, 0o700, 5, 6)
        # cond2 needs no rx bits: identical perms + ownership can never
        # widen visibility (paper condition 2 verbatim)
        assert rollup_compatible(0o600, 5, 6, 0o600, 5, 6)
        assert not rollup_compatible(0o700, 5, 6, 0o710, 5, 6)
        assert not rollup_compatible(0o660, 5, 6, 0o660, 5, 7)

    def test_cond3_group_private(self):
        # ug+rx, same ug perms, same owner/group, o-rx
        assert rollup_compatible(0o770, 5, 6, 0o770, 5, 6)
        assert rollup_compatible(0o750, 5, 6, 0o750, 5, 6)
        assert not rollup_compatible(0o770, 5, 6, 0o770, 5, 7)
        # o+rx on one side breaks cond3 (but may satisfy cond1... not
        # here since the other lacks o+rx)
        assert not rollup_compatible(0o775, 5, 6, 0o770, 5, 6)

    def test_cond3_mode_variant_mismatch(self):
        # write bits differ within group class -> cond2 fails, cond3
        # requires matching ug perms
        assert not rollup_compatible(0o770, 5, 6, 0o750, 5, 6)

    def test_cond4_user_private(self):
        assert rollup_compatible(0o700, 5, 6, 0o700, 5, 9)  # gid may differ
        assert not rollup_compatible(0o700, 5, 6, 0o700, 6, 6)
        # no x and differing gid: cond2 fails (gid), cond4 needs u+rx
        assert not rollup_compatible(0o600, 5, 6, 0o600, 5, 9)
        assert not rollup_compatible(0o750, 5, 6, 0o700, 5, 6)  # g+rx one side

    def test_setgid_bit_blocks_exact_but_not_cond3(self):
        # 02770 vs 0770: full-mode equality fails, but ug perms match
        assert rollup_compatible(0o2770, 5, 6, 0o770, 5, 6)


@pytest.fixture
def rollable_tree():
    """alice's private tree (all 0700) + a mixed tree that cannot roll."""
    t = VFSTree()
    t.mkdir("/home", mode=0o755, uid=0, gid=0)
    t.mkdir("/home/alice", mode=0o700, uid=1001, gid=1001)
    t.mkdir("/home/alice/a", mode=0o700, uid=1001, gid=1001)
    t.mkdir("/home/alice/a/b", mode=0o700, uid=1001, gid=1001)
    t.mkdir("/home/alice/c", mode=0o700, uid=1001, gid=1001)
    for i, d in enumerate(["/home/alice", "/home/alice/a",
                           "/home/alice/a/b", "/home/alice/c"]):
        for j in range(3):
            t.create_file(f"{d}/f{i}{j}", size=10 * (i + 1),
                          mode=0o600, uid=1001, gid=1001)
    t.mkdir("/home/mixed", mode=0o755, uid=0, gid=0)
    t.mkdir("/home/mixed/bob", mode=0o700, uid=1002, gid=1002)
    t.create_file("/home/mixed/bob/priv", size=5, mode=0o600, uid=1002, gid=1002)
    t.create_file("/home/mixed/open", size=7, mode=0o644, uid=0, gid=0)
    return t


@pytest.fixture
def rollable_index(rollable_tree, tmp_path):
    return dir2index(
        rollable_tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
    ).index


class TestMechanics:
    def test_alice_tree_rolls_to_one_db(self, rollable_index):
        stats = rollup(rollable_index, nthreads=NTHREADS)
        assert stats.rolled >= 2  # alice + alice/a at least
        meta = rollable_index.dir_meta("/home/alice")
        assert meta.rolledup
        assert meta.rollup_entries == 12  # all of alice's files

    def test_mixed_tree_blocked(self, rollable_index):
        stats = rollup(rollable_index, nthreads=NTHREADS)
        assert not rollable_index.dir_meta("/home/mixed").rolledup
        assert stats.blocked_perms >= 1

    def test_pentries_becomes_table(self, rollable_index):
        rollup(rollable_index, nthreads=NTHREADS)
        conn = dbmod.open_ro(rollable_index.db_path("/home/alice"))
        kind = conn.execute(
            "SELECT type FROM sqlite_master WHERE name='pentries'"
        ).fetchone()[0]
        n = conn.execute("SELECT COUNT(*) FROM pentries").fetchone()[0]
        n_entries = conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
        conn.close()
        assert kind == "table"
        assert n == 12
        assert n_entries == 3  # original data untouched

    def test_summary_rows_copied_with_prefix(self, rollable_index):
        rollup(rollable_index, nthreads=NTHREADS)
        conn = dbmod.open_ro(rollable_index.db_path("/home/alice"))
        rows = conn.execute(
            "SELECT name, isroot FROM summary ORDER BY name"
        ).fetchall()
        conn.close()
        names = {n for n, _ in rows}
        assert {"alice", "a", "a/b", "c"} <= names
        assert ("alice", 1) in rows
        assert ("a/b", 0) in rows

    def test_visible_db_count_drops(self, rollable_index):
        before = visible_db_count(rollable_index)
        rollup(rollable_index, nthreads=NTHREADS)
        after = visible_db_count(rollable_index)
        assert after < before
        # alice subtree: 4 dbs -> 1
        assert before - after >= 3

    def test_rollup_idempotent(self, rollable_index):
        rollup(rollable_index, nthreads=NTHREADS)
        q = GUFIQuery(rollable_index, nthreads=NTHREADS)
        r1 = sorted(q.run(Q1_LIST_PATHS).rows)
        stats2 = rollup(rollable_index, nthreads=NTHREADS)
        r2 = sorted(q.run(Q1_LIST_PATHS).rows)
        assert r1 == r2
        meta = rollable_index.dir_meta("/home/alice")
        assert meta.rollup_entries == 12

    def test_largest_visible_db(self, rollable_index):
        before = largest_visible_db_bytes(rollable_index)
        rollup(rollable_index, nthreads=NTHREADS)
        assert largest_visible_db_bytes(rollable_index) >= before


class TestLimits:
    def test_limit_blocks_large_merges(self, rollable_index):
        stats = rollup(rollable_index, limit=5, nthreads=NTHREADS)
        # alice has 12 entries total: the top can't roll at limit 5,
        # but a/b into a is 6 entries > 5 too; c (3) is a leaf.
        assert not rollable_index.dir_meta("/home/alice").rolledup
        assert stats.blocked_limit >= 1

    def test_limit_allows_small_merges(self, rollable_index):
        rollup(rollable_index, limit=6, nthreads=NTHREADS)
        # a (3) + b (3) = 6 <= 6 -> /home/alice/a rolls
        assert rollable_index.dir_meta("/home/alice/a").rolledup
        assert not rollable_index.dir_meta("/home/alice").rolledup

    def test_unlimited(self, rollable_index):
        rollup(rollable_index, limit=None, nthreads=NTHREADS)
        assert rollable_index.dir_meta("/home/alice").rolledup


class TestQueryInvariance:
    @pytest.mark.parametrize("creds", [None, ALICE, BOB, CAROL_IN_PROJ])
    def test_rows_unchanged_for_all_users(self, demo_tree, demo_index, creds):
        kwargs = {"nthreads": NTHREADS}
        if creds is not None:
            kwargs["creds"] = creds
        q = GUFIQuery(demo_index, **kwargs)
        before1 = sorted(q.run(Q1_LIST_PATHS).rows)
        before2 = sorted(q.run(Q2_DIR_SIZES).rows)
        rollup(demo_index, nthreads=NTHREADS)
        assert sorted(q.run(Q1_LIST_PATHS).rows) == before1
        assert sorted(q.run(Q2_DIR_SIZES).rows) == before2

    def test_rollup_never_leaks(self, rollable_index):
        """Bob must not gain sight of alice's entries via any merged
        database, and vice versa."""
        rollup(rollable_index, nthreads=NTHREADS)
        qb = GUFIQuery(rollable_index, creds=BOB, nthreads=NTHREADS)
        rows = [r[0] for r in qb.run(Q1_LIST_PATHS).rows]
        assert not any("/alice/" in r for r in rows)
        qa = GUFIQuery(rollable_index, creds=ALICE, nthreads=NTHREADS)
        rows_a = [r[0] for r in qa.run(Q1_LIST_PATHS).rows]
        assert not any("priv" in r for r in rows_a)


class TestUnrollup:
    def test_unrollup_restores_state(self, rollable_index):
        idx = rollable_index
        conn = dbmod.open_ro(idx.db_path("/home/alice"))
        orig_summary = conn.execute(
            "SELECT name, isroot FROM summary ORDER BY name"
        ).fetchall()
        orig_pentries = conn.execute(
            "SELECT name FROM pentries ORDER BY name"
        ).fetchall()
        conn.close()
        rollup(idx, nthreads=NTHREADS)
        unrollup_dir(idx, "/home/alice")
        conn = dbmod.open_ro(idx.db_path("/home/alice"))
        assert conn.execute(
            "SELECT name, isroot FROM summary ORDER BY name"
        ).fetchall() == orig_summary
        assert conn.execute(
            "SELECT name FROM pentries ORDER BY name"
        ).fetchall() == orig_pentries
        kind = conn.execute(
            "SELECT type FROM sqlite_master WHERE name='pentries'"
        ).fetchone()[0]
        conn.close()
        assert kind == "view"
        assert not idx.dir_meta("/home/alice").rolledup

    def test_unrollup_independent_of_children(self, rollable_index):
        idx = rollable_index
        rollup(idx, nthreads=NTHREADS)
        unrollup_dir(idx, "/home/alice")
        # children keep their own rollups
        assert idx.dir_meta("/home/alice/a").rolledup
        # and queries still return the full data set
        q = GUFIQuery(idx, creds=ALICE, nthreads=NTHREADS)
        rows = [r[0] for r in q.run(Q1_LIST_PATHS).rows]
        assert sum("/alice/" in r for r in rows) == 12

    def test_unrollup_noop_on_unrolled(self, rollable_index):
        unrollup_dir(rollable_index, "/home/mixed")  # must not raise
        assert not rollable_index.dir_meta("/home/mixed").rolledup


class TestXattrRollup:
    def test_xattr_values_roll_and_unroll(self, tmp_path):
        t = VFSTree()
        t.mkdir("/p", mode=0o700, uid=1001, gid=1001)
        t.mkdir("/p/c", mode=0o700, uid=1001, gid=1001)
        t.create_file("/p/c/f", mode=0o600, uid=1001, gid=1001)
        t.setxattr("/p/c/f", "user.k", b"v")
        # a foreign-owned file inside, so a per-user side db exists
        t.create_file("/p/c/g", mode=0o600, uid=1002, gid=1002)
        t.setxattr("/p/c/g", "user.b", b"w")
        idx = dir2index(t, tmp_path / "i", opts=BuildOptions(nthreads=NTHREADS)).index
        rollup(idx, nthreads=NTHREADS)
        assert idx.dir_meta("/p").rolledup
        # side db merged upward
        assert (idx.index_dir("/p") / "xattrs.db.u1002").exists()
        spec = QuerySpec(E="SELECT name, exattrs FROM xpentries", xattrs=True)
        rows = dict(
            GUFIQuery(idx, creds=ALICE, nthreads=NTHREADS).run(spec, "/p").rows
        )
        assert "user.k=v" in rows["f"]
        assert "g" not in rows  # foreign value stays invisible to alice
        rows_root = dict(
            GUFIQuery(idx, nthreads=NTHREADS).run(spec, "/p").rows
        )
        assert "user.b=w" in rows_root["g"]
        # unrollup removes the rolled-in side db and rows
        unrollup_dir(idx, "/p")
        assert not (idx.index_dir("/p") / "xattrs.db.u1002").exists()
        conn = dbmod.open_ro(idx.db_path("/p"))
        assert conn.execute("SELECT COUNT(*) FROM xattrs").fetchone()[0] == 0
        conn.close()
