"""Failure-injection tests: damaged shards, interrupted builds, stale
tracking rows — the query engine and validators must degrade, not die."""

from __future__ import annotations

import pytest

from repro.core import db as dbmod
from repro.core.build import BuildOptions, dir2index
from repro.core.compose import validate
from repro.core.query import GUFIQuery, Q1_LIST_PATHS, QuerySpec
from repro.core.rollup import rollup
from tests.conftest import NTHREADS, build_demo_tree


@pytest.fixture
def idx(tmp_path):
    return dir2index(
        build_demo_tree(), tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
    ).index


class TestCorruptShard:
    def test_query_survives_garbage_db(self, idx):
        idx.db_path("/home/bob").write_bytes(b"\xde\xad\xbe\xef" * 1000)
        result = GUFIQuery(idx, nthreads=NTHREADS).run(Q1_LIST_PATHS)
        assert result.dirs_errored == 1
        paths = {r[0] for r in result.rows}
        assert "/home/alice/a.txt" in paths  # the rest still answers
        assert not any("bob" in p for p in paths)

    def test_query_survives_truncated_db(self, idx):
        p = idx.db_path("/proj/shared")
        p.write_bytes(p.read_bytes()[:100])
        result = GUFIQuery(idx, nthreads=NTHREADS).run(Q1_LIST_PATHS)
        assert result.dirs_errored >= 1
        assert result.rows

    def test_query_survives_empty_file(self, idx):
        idx.db_path("/public").write_bytes(b"")
        result = GUFIQuery(idx, nthreads=NTHREADS).run(Q1_LIST_PATHS)
        # sqlite treats a zero-length file as a valid empty db: no
        # summary record -> skipped without error propagation
        assert result.rows
        assert not any("readme" in r[0] for r in result.rows)

    def test_validate_reports_corruption(self, idx):
        idx.db_path("/home/bob").write_bytes(b"junk" * 100)
        report = validate(idx)
        assert not report.ok

    def test_user_sql_errors_still_propagate(self, idx):
        """Corruption is survivable; a typo in the user's SQL is not
        silently swallowed."""
        with pytest.raises(RuntimeError):
            GUFIQuery(idx, nthreads=NTHREADS).run(
                QuerySpec(E="SELECT definitely_not_a_column FROM pentries")
            )


class TestPartialState:
    def test_missing_db_prunes_quietly(self, idx):
        (idx.index_dir("/home/alice") / "db.db").unlink()
        result = GUFIQuery(idx, nthreads=NTHREADS).run(Q1_LIST_PATHS)
        assert not any("alice" in r[0] for r in result.rows)
        assert result.dirs_errored == 0  # absent, not corrupt

    def test_stale_xattr_tracking_row(self, tmp_path):
        """xattrs_avail names a side database that vanished (e.g. an
        interrupted update): the xattr view builder must skip it."""
        from repro.fs.tree import VFSTree

        t = VFSTree()
        t.mkdir("/d", mode=0o755, uid=1001, gid=1001)
        t.create_file("/d/f", mode=0o600, uid=1002, gid=1002)
        t.setxattr("/d/f", "user.k", b"v")
        idx = dir2index(t, tmp_path / "i",
                        opts=BuildOptions(nthreads=NTHREADS)).index
        # both the per-user and the per-group side dbs vanished
        (idx.index_dir("/d") / "xattrs.db.u1002").unlink()
        (idx.index_dir("/d") / "xattrs.db.g1002.nr").unlink()
        spec = QuerySpec(E="SELECT name FROM xpentries", xattrs=True)
        result = GUFIQuery(idx, nthreads=NTHREADS).run(spec, "/d")
        assert result.rows == []  # values gone, query fine

    def test_rollup_after_corruption_raises(self, idx):
        """Rollup is an admin write operation: corruption must be loud,
        not silently merged around."""
        idx.db_path("/home/bob").write_bytes(b"junk" * 500)
        with pytest.raises(RuntimeError):
            rollup(idx, nthreads=NTHREADS)
