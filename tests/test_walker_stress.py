"""Stress and edge-path tests for :class:`ParallelTreeWalker`:
batch hand-off, sentinel shutdown, seeded random trees across thread
counts, retry backoff, and fatal-abort semantics."""

from __future__ import annotations

import random
import threading

import pytest

from repro.scan.faults import BuildCrash, FaultPlan, InjectedFault
from repro.scan.walker import FatalWalkError, ParallelTreeWalker, RetryPolicy


def make_random_tree(seed: int, n_nodes: int = 400, max_kids: int = 6):
    """A random tree as {node_id: [child_ids]}, node 0 the root."""
    rng = random.Random(seed)
    children: dict[int, list[int]] = {0: []}
    frontier = [0]
    next_id = 1
    while next_id < n_nodes:
        parent = rng.choice(frontier)
        kids = []
        for _ in range(rng.randint(1, max_kids)):
            if next_id >= n_nodes:
                break
            children[next_id] = []
            kids.append(next_id)
            next_id += 1
        children[parent].extend(kids)
        frontier.extend(kids)
        if len(frontier) > 50:
            frontier = frontier[-50:]
    return children


class TestStress:
    @pytest.mark.parametrize("nthreads", [1, 2, 8])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_item_exactly_once(self, nthreads, seed):
        """No node dropped, none expanded twice — across thread counts
        and random shapes (this exercises the work.empty() hand-off
        branch: deep batches get shared when the queue runs dry)."""
        tree = make_random_tree(seed)
        seen: list[int] = []
        lock = threading.Lock()

        def expand(node):
            with lock:
                seen.append(node)
            return tree[node]

        stats = ParallelTreeWalker(nthreads=nthreads).walk([0], expand)
        assert sorted(seen) == sorted(tree)  # exactly once each
        assert stats.items_processed == len(tree)
        assert stats.items_errored == 0

    def test_batch_handoff_shares_work(self):
        """Deterministic proof the work.empty() hand-off branch runs:
        the root expands to [sibling, blocker]; the worker pops
        "blocker" and its expansion waits for "sibling" to be
        processed. Without the hand-off, "sibling" would stay in the
        blocked worker's local batch forever (deadlock); with it, the
        remainder is shared and another worker completes it."""
        sibling_done = threading.Event()
        who: dict[str, str] = {}

        def expand(item):
            who[item] = threading.current_thread().name
            if item == "root":
                return ["sibling", "blocker"]
            if item == "blocker":
                assert sibling_done.wait(timeout=30), (
                    "hand-off branch never shared the batch"
                )
            if item == "sibling":
                sibling_done.set()
            return []

        stats = ParallelTreeWalker(nthreads=2).walk(["root"], expand)
        assert stats.items_processed == 3
        # the shared item ran on a different thread than the blocker
        assert who["sibling"] != who["blocker"]

    def test_sentinel_shutdown_no_stragglers(self):
        """Worker threads exit after the walk; nothing daemonic left
        running from this walker."""
        before = {t.name for t in threading.enumerate()}
        ParallelTreeWalker(nthreads=4).walk([0], lambda n: [])
        after = {t.name for t in threading.enumerate()} - before
        assert not {n for n in after if n.startswith("walker-")}

    def test_reusable_across_walks(self):
        w = ParallelTreeWalker(nthreads=2)
        tree = make_random_tree(3, n_nodes=50)
        s1 = w.walk([0], lambda n: tree[n])
        s2 = w.walk([0], lambda n: tree[n])
        assert s1.items_processed == s2.items_processed == 50


class TestErrorPaths:
    def test_error_accounting_consistent(self):
        """items_errored + items_processed == total handled; per-thread
        counts sum to the same; effective_concurrency stays in (0, 1]."""
        tree = make_random_tree(5, n_nodes=120)
        bad = set(range(0, 120, 7)) - {0}

        def expand(node):
            if node in bad:
                raise ValueError(f"bad node {node}")
            return tree[node]

        stats = ParallelTreeWalker(nthreads=2).walk([0], expand)
        assert stats.items_errored == len(stats.errors)
        # errored nodes never expand, so their subtrees are pruned —
        # processed + errored equals nodes actually reached
        reached = stats.items_processed + stats.items_errored
        assert sum(stats.items_per_thread.values()) == reached
        assert {n for n, _ in stats.errors} <= bad
        assert all(isinstance(e, ValueError) for _, e in stats.errors)
        assert 0.0 < stats.effective_concurrency <= 1.0
        assert len(stats.thread_completion_times) == 2

    def test_collect_errors_false_reraises(self):
        def expand(node):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            ParallelTreeWalker(nthreads=1).walk(
                [0], expand, collect_errors=False
            )


class TestRetry:
    def test_transient_fault_retried_to_success(self):
        """An injected I/O error that heals within the retry budget is
        invisible in errors; the retry counter and the recorded sleeps
        show the backoff path ran (no real sleeping: sleep is
        recorded, not performed)."""
        sleeps: list[float] = []
        policy = RetryPolicy(retries=3, backoff=0.01, sleep=sleeps.append)
        plan = FaultPlan.flaky_paths("walker.expand", ["0"], times=2)

        stats = ParallelTreeWalker(nthreads=1).walk(
            ["0"], lambda n: [], retry=policy, faults=plan
        )
        assert stats.items_processed == 1
        assert stats.items_errored == 0
        assert stats.items_retried == 2
        assert sleeps == [policy.delay(0), policy.delay(1)]

    def test_retries_exhausted_records_error(self):
        policy = RetryPolicy(retries=1, sleep=lambda s: None)
        plan = FaultPlan.flaky_paths("walker.expand", ["0"], times=5)
        stats = ParallelTreeWalker(nthreads=1).walk(
            ["0"], lambda n: [], retry=policy, faults=plan
        )
        assert stats.items_processed == 0
        assert stats.items_errored == 1
        assert stats.items_retried == 1
        assert isinstance(stats.errors[0][1], InjectedFault)

    def test_non_transient_not_retried(self):
        policy = RetryPolicy(retries=5, sleep=lambda s: None)

        def expand(node):
            raise ValueError("permanent")

        stats = ParallelTreeWalker(nthreads=1).walk([0], expand, retry=policy)
        assert stats.items_retried == 0
        assert stats.items_errored == 1

    def test_delay_is_capped(self):
        policy = RetryPolicy(backoff=0.1, multiplier=10.0, max_backoff=0.25)
        assert policy.delay(0) == 0.1
        assert policy.delay(5) == 0.25

    def test_virtual_clock_backoff(self):
        """Backoff charged to a virtual clock: deterministic elapsed
        time, zero wall-clock sleeping."""
        from repro.sim.clock import VirtualClock

        clock = VirtualClock()
        policy = RetryPolicy(retries=2, backoff=0.5, sleep=clock.charge)
        plan = FaultPlan.flaky_paths("walker.expand", ["0"], times=2)
        ParallelTreeWalker(nthreads=1).walk(
            ["0"], lambda n: [], retry=policy, faults=plan
        )
        assert clock.now == pytest.approx(policy.delay(0) + policy.delay(1))


class TestFatalAbort:
    @pytest.mark.parametrize("nthreads", [1, 4])
    def test_fatal_aborts_and_propagates(self, nthreads):
        tree = make_random_tree(9, n_nodes=200)
        plan = FaultPlan.crash_at("walker.expand", 60)
        with pytest.raises(BuildCrash):
            ParallelTreeWalker(nthreads=nthreads).walk(
                [0], lambda n: tree[n], faults=plan
            )
        # the crash stopped the walk early: nowhere near all 200
        # expansions happened after the fault fired
        assert plan.count("walker.expand") < 200

    def test_fatal_not_retried(self):
        calls = []
        policy = RetryPolicy(retries=5, retry_on=(Exception,), sleep=lambda s: None)

        def expand(node):
            calls.append(node)
            raise FatalWalkError("dead")

        with pytest.raises(FatalWalkError):
            ParallelTreeWalker(nthreads=1).walk([0], expand, retry=policy)
        assert len(calls) == 1

    def test_pool_shuts_down_cleanly_after_fatal(self):
        """After an abort the sentinel shutdown still runs: no walker
        threads survive, and the walker can be reused."""
        w = ParallelTreeWalker(nthreads=4)
        with pytest.raises(BuildCrash):
            w.walk([0], lambda n: [0], faults=FaultPlan.crash_at("walker.expand", 5))
        assert not [
            t for t in threading.enumerate() if t.name.startswith("walker-")
        ]
        stats = w.walk([0], lambda n: [])
        assert stats.items_processed == 1
