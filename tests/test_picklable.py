"""Pickle round-trips for the payload types scatter-gather ships to
worker processes.

Every object that crosses the process boundary (``QuerySpec``,
``QueryPlan``, ``FindFilters``, ``Credentials``) must survive
``pickle.dumps``/``loads`` with full fidelity — including under
protocol 2, the floor any spawn-method start can negotiate — because a
silently lossy round-trip would make multi-process results diverge
from single-process ones in ways the equivalence suite might not
exercise.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.engine import QuerySpec
from repro.core.plan import QueryPlan, plan_for
from repro.core.tools import FindFilters
from repro.fs.permissions import ROOT, Credentials

PROTOCOLS = [2, pickle.HIGHEST_PROTOCOL]


def round_trip(obj, protocol):
    return pickle.loads(pickle.dumps(obj, protocol=protocol))


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestPicklable:
    def test_query_spec_defaults(self, protocol):
        spec = QuerySpec(E="SELECT name FROM pentries")
        assert round_trip(spec, protocol) == spec

    def test_query_spec_all_stages(self, protocol):
        spec = QuerySpec(
            I="CREATE TABLE t (v INTEGER)",
            T="SELECT totsize FROM tsummary WHERE rectype = 0",
            S="INSERT INTO t SELECT TOTAL(size) FROM summary",
            E="INSERT INTO t SELECT TOTAL(size) FROM pentries",
            J="INSERT INTO aggregate.t SELECT TOTAL(v) FROM t",
            G="SELECT TOTAL(v) FROM t",
            xattrs=True,
            t_no_prune=True,
            output_prefix="/tmp/out",
        )
        clone = round_trip(spec, protocol)
        assert clone == spec
        # Field-by-field, so a future non-comparing field still fails.
        for name in spec.__dataclass_fields__:
            assert getattr(clone, name) == getattr(spec, name), name

    def test_query_plan(self, protocol):
        plan = QueryPlan(min_level=1, max_level=3, entries_shaped=False)
        clone = round_trip(plan, protocol)
        assert clone == plan
        assert clone.wants_level(2) and not clone.wants_level(0)
        assert clone.descend_allowed(3) == plan.descend_allowed(3)

    def test_query_plan_from_filters(self, protocol):
        plan = plan_for(
            FindFilters(min_size=600, ftype="f", name_like="%.h5")
        )
        clone = round_trip(plan, protocol)
        assert clone == plan

    def test_find_filters(self, protocol):
        filters = FindFilters(
            name_like="%.c", ftype="f", min_size=1, max_size=10**9,
            uid=1001, gid=100, mtime_before=2_000_000_000, mtime_after=1,
            xattr_name_like="%user.%", min_level=0, max_level=4,
        )
        clone = round_trip(filters, protocol)
        assert clone == filters
        # The behavior the worker relies on, not just the fields.
        assert clone.where_clause() == filters.where_clause()

    def test_credentials(self, protocol):
        creds = Credentials(uid=1003, gid=1003, groups=frozenset({100, 200}))
        clone = round_trip(creds, protocol)
        assert clone == creds
        assert isinstance(clone.groups, frozenset)
        # __post_init__ folds the gid into groups at construction; the
        # round-trip must preserve that normalized set, not re-derive it.
        assert clone.groups == frozenset({100, 200, 1003})
        assert clone.in_group(100) and clone.in_group(1003)

    def test_credentials_root(self, protocol):
        clone = round_trip(ROOT, protocol)
        assert clone == ROOT
        assert clone.uid == 0
