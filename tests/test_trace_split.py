"""Tests for trace splitting/merging (distributed ingest support)."""

from __future__ import annotations

import pytest

from repro.core.build import BuildOptions, build_from_stanzas, trace2index
from repro.core.index import GUFIIndex
from repro.core.query import GUFIQuery, Q1_LIST_PATHS
from repro.scan.scanners import TreeWalkScanner
from repro.scan.trace import merge_traces, read_trace, split_trace, write_trace
from tests.conftest import NTHREADS, build_demo_tree


@pytest.fixture
def trace_file(tmp_path):
    stanzas = TreeWalkScanner(build_demo_tree(), nthreads=1).scan("/").stanzas
    path = tmp_path / "fs.trace"
    write_trace(stanzas, path)
    return path, stanzas


class TestSplit:
    def test_stanza_alignment(self, trace_file, tmp_path):
        path, stanzas = trace_file
        parts = split_trace(path, tmp_path / "parts", 3)
        assert len(parts) == 3
        total = 0
        for part in parts:
            for stanza in read_trace(part):  # parses => aligned
                total += 1
        assert total == len(stanzas)

    def test_no_records_lost(self, trace_file, tmp_path):
        path, stanzas = trace_file
        parts = split_trace(path, tmp_path / "parts", 4)
        got = []
        for part in parts:
            got.extend(s.directory.path for s in read_trace(part))
        assert sorted(got) == sorted(s.directory.path for s in stanzas)

    def test_single_part(self, trace_file, tmp_path):
        path, stanzas = trace_file
        (part,) = split_trace(path, tmp_path / "parts", 1)
        assert len(list(read_trace(part))) == len(stanzas)

    def test_more_parts_than_stanzas(self, trace_file, tmp_path):
        path, stanzas = trace_file
        parts = split_trace(path, tmp_path / "parts", 50)
        assert len(parts) <= 50
        total = sum(len(list(read_trace(p))) for p in parts)
        assert total == len(stanzas)

    def test_invalid_parts(self, trace_file, tmp_path):
        path, _ = trace_file
        with pytest.raises(ValueError):
            split_trace(path, tmp_path / "parts", 0)


class TestMerge:
    def test_roundtrip(self, trace_file, tmp_path):
        path, stanzas = trace_file
        parts = split_trace(path, tmp_path / "parts", 3)
        merged = tmp_path / "merged.trace"
        n = merge_traces(parts, merged)
        assert n == sum(1 + len(s.entries) for s in stanzas)
        back = list(read_trace(merged))
        assert sorted(s.directory.path for s in back) == sorted(
            s.directory.path for s in stanzas
        )


class TestDistributedIngest:
    def test_parallel_part_ingest_composes(self, trace_file, tmp_path):
        """Each part ingested by an independent worker into the same
        index root must compose into the same index a single ingest
        produces."""
        path, stanzas = trace_file
        parts = split_trace(path, tmp_path / "parts", 3)
        shared_root = tmp_path / "sharded_idx"
        for part in parts:  # each is an independent trace2index run
            part_stanzas = list(read_trace(part))
            if not shared_root.exists():
                build_from_stanzas(
                    part_stanzas, shared_root, BuildOptions(nthreads=NTHREADS)
                )
            else:
                idx = GUFIIndex.open(shared_root)
                from repro.core.build import build_dir_db

                for stanza in part_stanzas:
                    build_dir_db(idx, stanza, BuildOptions(nthreads=NTHREADS))
        single = trace2index(
            path, tmp_path / "single_idx", BuildOptions(nthreads=NTHREADS)
        )
        q_sharded = GUFIQuery(GUFIIndex.open(shared_root), nthreads=NTHREADS)
        q_single = GUFIQuery(single.index, nthreads=NTHREADS)
        assert sorted(q_sharded.run(Q1_LIST_PATHS).rows) == sorted(
            q_single.run(Q1_LIST_PATHS).rows
        )
