"""Async serving stress: hundreds of concurrent clients, ≥3 tenants.

The multi-tenant contract under load, end-to-end through the ASGI
app: one tenant's flood cannot starve another (the per-tenant
concurrency quota caps how much of the executor a flood can hold),
every request that reaches the synchronous server lands exactly one
audit entry, and no response ever carries a row its tenant could not
see — under concurrency, not just sequentially.

This suite complements (not replaces) ``test_server_stress.py``:
that one hammers the bare ``GUFIServer`` with threads; this one
hammers the full serving stack with coroutines.
"""

from __future__ import annotations

import asyncio
from collections import Counter

import pytest

from repro.core.engine import QuerySpec
from repro.core.server import GUFIServer, IdentityProvider
from repro.serve import ASGIClient, GUFIApp
from tests.conftest import NTHREADS

E_ALL = "SELECT rpath(dname, d_isroot, name), size FROM vrpentries"

#: the flood tenant's burst of simultaneous requests
FLOOD = 150
#: polite tenants: workers × sequential requests each
POLITE_WORKERS = 5
POLITE_REQUESTS = 12


@pytest.fixture
def identity():
    idp = IdentityProvider()
    idp.add_user("alice", uid=1001, gid=1001)
    idp.add_user("bob", uid=1002, gid=1002)
    idp.add_user("carol", uid=1003, gid=1003, groups=frozenset({100}))
    idp.add_user("mallory", uid=1999, gid=1999, enabled=False)
    return idp


@pytest.fixture
def server(demo_index, identity):
    with GUFIServer(
        demo_index, identity, nthreads=NTHREADS, result_cache_mb=8.0
    ) as srv:
        yield srv


def expected_paths(server: GUFIServer, user: str) -> set:
    return {
        r[0]
        for r in server.invoke(user, "query", spec=QuerySpec(E=E_ALL)).rows
    }


class TestQuotaIsolationUnderFlood:
    def test_flood_tenant_cannot_starve_others(self, server):
        """alice fires 150 simultaneous requests; bob and carol run
        bounded-concurrency query workloads at the same time. The
        per-tenant quota must 429 most of the flood while every
        polite request completes — and every returned row set is
        exactly its tenant's."""
        want = {u: expected_paths(server, u) for u in ("bob", "carol")}

        async def scenario(app):
            client = ASGIClient(app)

            async def polite(user: str) -> list:
                out = []
                for _ in range(POLITE_REQUESTS):
                    out.append(
                        await client.invoke(
                            user, "query", args={"spec": {"E": E_ALL}}
                        )
                    )
                return out

            flood = asyncio.gather(
                *(client.invoke("alice", "du") for _ in range(FLOOD))
            )
            polite_runs = asyncio.gather(
                *(polite("bob") for _ in range(POLITE_WORKERS)),
                *(polite("carol") for _ in range(POLITE_WORKERS)),
            )
            flood_responses, polite_groups = await asyncio.gather(
                flood, polite_runs
            )
            return flood_responses, polite_groups

        with GUFIApp(
            server,
            max_inflight=2,
            queue_limit=512,
            tenant_concurrency=POLITE_WORKERS + 1,
            deadline_s=120.0,
        ) as app:
            flood_responses, polite_groups = asyncio.run(scenario(app))

        # the flood is mostly rejected by its own tenant quota...
        flood_statuses = Counter(r.status for r in flood_responses)
        assert flood_statuses[429] > FLOOD // 2
        assert flood_statuses[200] >= 1  # ...but not locked out
        assert set(flood_statuses) <= {200, 429}
        for r in flood_responses:
            if r.status == 429:
                assert r.json()["error"]["code"] == "quota_exceeded"

        # every polite request completed — no starvation, no shedding
        n_polite = 0
        for group_no, group in enumerate(polite_groups):
            user = "bob" if group_no < POLITE_WORKERS else "carol"
            for resp in group:
                n_polite += 1
                assert resp.status == 200, (user, resp.status, resp.text)
                rows = resp.json()["rows"]
                # zero cross-tenant rows, under concurrency
                assert {r[0] for r in rows} == want[user]
        assert n_polite == 2 * POLITE_WORKERS * POLITE_REQUESTS

    def test_audit_log_integrity_under_flood(self, server):
        """Exactly one audit entry per request that passed the QoS
        rings (rejected requests never reach the server), each under
        the right username."""
        base = len(server.audit_log)

        async def scenario(app):
            client = ASGIClient(app)
            tasks = []
            for i in range(120):
                user = ("alice", "bob", "carol")[i % 3]
                if i % 10 == 9:
                    # a failing invocation: disabled principal
                    tasks.append(client.invoke("mallory", "du"))
                else:
                    tasks.append(client.invoke(user, "du"))
            return await asyncio.gather(*tasks)

        with GUFIApp(
            server, max_inflight=2, queue_limit=512, deadline_s=120.0
        ) as app:
            responses = asyncio.run(scenario(app))

        statuses = Counter(r.status for r in responses)
        assert statuses[200] == 108
        assert statuses[401] == 12  # mallory, rejected at the door
        # auth rejections happen before the server is reached: only
        # the 200s are audited, exactly once each
        entries = list(server.audit_log)[base:]
        assert len(entries) == 108
        by_user = Counter(e.username for e in entries)
        assert by_user == {"alice": 36, "bob": 36, "carol": 36}
        assert all(e.ok and e.tool == "du" for e in entries)
        assert server.audit_dropped == 0


class TestManyTenantsConcurrently:
    def test_hundreds_of_clients_roundtrip_correct_rows(
        self, demo_index
    ):
        """300 concurrent in-process clients across five tenants; every
        response is that tenant's exact row set."""
        idp = IdentityProvider()
        idp.add_user("alice", uid=1001, gid=1001)
        idp.add_user("bob", uid=1002, gid=1002)
        idp.add_user("carol", uid=1003, gid=1003, groups=frozenset({100}))
        idp.add_user("dave", uid=1004, gid=1004)
        idp.add_user("root", uid=0, gid=0)
        users = ("alice", "bob", "carol", "dave", "root")
        with GUFIServer(
            demo_index, idp, nthreads=NTHREADS, result_cache_mb=8.0
        ) as server:
            want = {u: expected_paths(server, u) for u in users}

            async def scenario(app):
                client = ASGIClient(app)
                tasks = [
                    client.invoke(
                        users[i % len(users)], "query",
                        args={"spec": {"E": E_ALL}},
                    )
                    for i in range(300)
                ]
                return await asyncio.gather(*tasks)

            with GUFIApp(
                server, max_inflight=4, queue_limit=512, deadline_s=120.0
            ) as app:
                responses = asyncio.run(scenario(app))

        assert len(responses) == 300
        for i, resp in enumerate(responses):
            user = users[i % len(users)]
            assert resp.status == 200, (user, resp.status, resp.text)
            got = {r[0] for r in resp.json()["rows"]}
            assert got == want[user], f"cross-tenant rows for {user}"
        # dave sees only world-readable paths, root sees everything:
        # the per-tenant sets really are distinct under concurrency
        assert want["dave"] < want["root"]
        assert want["alice"] != want["bob"]
