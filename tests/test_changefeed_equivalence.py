"""Changefeed equivalence: the acceptance property for incremental
indexing (ISSUE tentpole + satellite 1).

The contract: draining a :class:`~repro.fs.changelog.ChangeJournal`
and applying the delta with :func:`~repro.core.changefeed.
changefeed2index` must leave the index indistinguishable from a
from-scratch ``dir2index`` rebuild of the mutated tree — same entries
rows, same query results for privileged and unprivileged credentials,
same DirStats, same tsummary aggregates — for arbitrary interleavings
of mutation batches and applies, with and without rollups in place.

``atime`` is excluded from the row oracle: ``readdir`` bumps directory
atimes, so two scans of the same tree legitimately disagree on it (and
no gated query exposes it).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import db as dbmod
from repro.core.build import BuildOptions, dir2index
from repro.core.changefeed import changefeed2index, reduce_events
from repro.core.index import GUFIIndex
from repro.core.query import (
    Q1_LIST_PATHS,
    Q2_DIR_SIZES,
    Q3_DU_SUMMARIES,
    Q4_DU_TSUMMARY,
    GUFIQuery,
)
from repro.core.rollup import rollup
from repro.core.tsummary import build_tsummary
from repro.fs.changelog import ChangeJournal
from repro.gen.datasets import dataset2
from repro.gen.namespace import NamespaceMutator
from tests.conftest import ALICE, BOB, NTHREADS, build_demo_tree

OPTS = BuildOptions(nthreads=NTHREADS)

#: entries columns compared by the row oracle — everything but atime
ENTRY_COLS = (
    "name, type, inode, mode, nlink, uid, gid, size, "
    "mtime, ctime, linkname, xattr_names"
)


def entry_rows(index: GUFIIndex) -> dict[str, tuple]:
    """source-path → full entries row (minus atime), admin-side."""
    out: dict[str, tuple] = {}
    for d in index.iter_index_dirs():
        sp = index.source_path(d)
        prefix = "" if sp == "/" else sp
        conn = dbmod.open_ro(d / "db.db")
        try:
            for row in conn.execute(f"SELECT {ENTRY_COLS} FROM entries"):
                out[f"{prefix}/{row[0]}"] = row
        finally:
            conn.close()
    return out


def query_rows(index: GUFIIndex, spec, creds=None) -> list:
    kwargs = {} if creds is None else {"creds": creds}
    q = GUFIQuery(index, nthreads=NTHREADS, **kwargs)
    try:
        return sorted(q.run(spec).rows)
    finally:
        q.close()


def dir_stats(index_root, dirs) -> dict[str, object]:
    """DirStats per live directory, through a cold handle (no cache
    artifacts can mask a stale database)."""
    idx = GUFIIndex.open(index_root)
    out = {}
    for d in sorted(dirs):
        meta = idx.cached_dir_meta(d)
        assert meta is not None, f"no index database for {d}"
        out[d] = (meta.mode, meta.uid, meta.gid, meta.stats)
    return out


def assert_equivalent(inc_index, tree, tmp_path, *, stats_dirs=None,
                      tsummary=False, creds_list=(None, ALICE, BOB)):
    """Incremental index == from-scratch rebuild of the live tree."""
    fresh = dir2index(tree, tmp_path / "fresh", opts=OPTS).index
    assert entry_rows(inc_index) == entry_rows(fresh)
    for creds in creds_list:
        for spec in (Q1_LIST_PATHS, Q2_DIR_SIZES, Q3_DU_SUMMARIES):
            assert query_rows(inc_index, spec, creds) == query_rows(
                fresh, spec, creds
            ), f"divergence under creds={creds} spec={spec}"
    if tsummary:
        # build the oracle's tsummary first: DirStats.maxdepth reads it
        build_tsummary(fresh, "/", per_user_group=True)
        assert query_rows(inc_index, Q4_DU_TSUMMARY) == query_rows(
            fresh, Q4_DU_TSUMMARY
        )
    if stats_dirs is not None:
        assert dir_stats(inc_index.root, stats_dirs) == dir_stats(
            fresh.root, stats_dirs
        )


class TestDeterministicEquivalence:
    """Every op type, hand-scripted on the demo tree."""

    def test_each_op_type_applies_equivalently(self, tmp_path):
        tree = build_demo_tree()
        index = dir2index(tree, tmp_path / "idx", opts=OPTS).index
        build_tsummary(index, "/", per_user_group=True)
        journal = ChangeJournal()
        tree.set_changelog(journal)

        tree.create_file("/home/bob/new.dat", size=123, uid=1002, gid=1002)
        tree.mkdir("/home/bob/newdir", mode=0o755, uid=1002, gid=1002)
        tree.create_file("/home/bob/newdir/inner.txt", size=7,
                         uid=1002, gid=1002)
        tree.unlink("/public/readme")
        tree.rename("/home/bob/b.txt", "/public/b.txt")  # cross-dir file
        tree.rename("/home/bob/newdir", "/proj/newdir")  # created this batch
        tree.rename("/public/ronly", "/proj/ronly")  # pre-existing subtree
        tree.chmod("/home/alice", 0o755, ALICE)
        tree.chown("/home/alice/a.txt", uid=1003, gid=100)
        tree.utime("/proj/shared/p.c", atime=5, mtime=9)
        tree.setxattr("/proj/shared/data/d.h5", "user.tag", b"v")
        tree.removexattr("/proj/shared/data/d.h5", "user.tag")
        tree.unlink("/home/bob/secret/s.key")
        tree.rmdir("/home/bob/secret", BOB)

        result = changefeed2index(index, tree, journal, opts=OPTS)
        assert result.events_applied > 0
        assert result.dirs_moved == 1  # only the pre-existing subtree
        # moves a directory created in the same batch by rebuilding it
        assert result.dirs_removed >= 1  # the rmdir
        live_dirs = [
            "/", "/home", "/home/alice", "/home/alice/sub", "/home/bob",
            "/proj", "/proj/newdir", "/proj/ronly", "/proj/shared",
            "/proj/shared/data", "/public", "/public/xonly",
        ]
        assert_equivalent(index, tree, tmp_path, stats_dirs=live_dirs,
                          tsummary=True)

    def test_moved_subtree_depth_columns_healed(self, tmp_path):
        """A cross-depth directory move must leave every descendant's
        absolute depth column correct (self-healing fixup)."""
        tree = build_demo_tree()
        index = dir2index(tree, tmp_path / "idx", opts=OPTS).index
        journal = ChangeJournal()
        tree.set_changelog(journal)
        tree.rename("/home/alice/sub", "/sub")  # depth 3 -> depth 1
        changefeed2index(index, tree, journal, opts=OPTS)
        conn = dbmod.open_ro(index.db_path("/sub"))
        try:
            (depth,) = conn.execute(
                "SELECT depth FROM summary WHERE isroot = 1 AND rectype = 0"
            ).fetchone()
        finally:
            conn.close()
        assert depth == 1
        assert_equivalent(index, tree, tmp_path)

    def test_empty_batch_is_a_noop(self, tmp_path):
        tree = build_demo_tree()
        index = dir2index(tree, tmp_path / "idx", opts=OPTS).index
        journal = ChangeJournal()
        tree.set_changelog(journal)
        result = changefeed2index(index, tree, journal, opts=OPTS)
        assert result.events_applied == 0
        assert result.dirs_rebuilt == 0

    def test_second_apply_is_a_noop(self, tmp_path):
        """The cursor advances past applied events: re-running the
        consumer immediately drains nothing."""
        tree = build_demo_tree()
        index = dir2index(tree, tmp_path / "idx", opts=OPTS).index
        journal = ChangeJournal()
        tree.set_changelog(journal)
        tree.create_file("/public/x.txt", size=1, uid=0, gid=0)
        first = changefeed2index(index, tree, journal, opts=OPTS)
        assert first.events_applied == 1
        again = changefeed2index(index, tree, journal, opts=OPTS)
        assert again.events_applied == 0
        assert len(journal) == 0  # released after commit


class TestRollupEquivalence:
    """Satellite 1, rolled-up variant: applying a changefeed to a
    rolled index still answers queries identically to a fresh rebuild
    (affected rollups are unrolled; untouched ones keep serving)."""

    def test_apply_to_rolled_index(self, tmp_path):
        tree = build_demo_tree()
        index = dir2index(tree, tmp_path / "idx", opts=OPTS).index
        rollup(index, nthreads=NTHREADS)
        journal = ChangeJournal()
        tree.set_changelog(journal)
        tree.create_file("/home/alice/sub/fresh.dat", size=11,
                         mode=0o600, uid=1001, gid=1001)
        tree.chmod("/home/bob", 0o700, BOB)
        tree.rename("/proj/shared/p.c", "/proj/shared/data/p.c")
        result = changefeed2index(index, tree, journal, opts=OPTS)
        assert result.unrolled_dirs  # rollups on touched paths undone
        assert_equivalent(index, tree, tmp_path)

    def test_rmdir_under_rollup(self, tmp_path):
        tree = build_demo_tree()
        index = dir2index(tree, tmp_path / "idx", opts=OPTS).index
        rollup(index, nthreads=NTHREADS)
        journal = ChangeJournal()
        tree.set_changelog(journal)
        tree.unlink("/home/bob/secret/s.key")
        tree.rmdir("/home/bob/secret", BOB)
        changefeed2index(index, tree, journal, opts=OPTS)
        assert not index.index_dir("/home/bob/secret").exists()
        assert_equivalent(index, tree, tmp_path)


class TestReduceEventsUnit:
    """The fold from events to (structural ops, dirty dirs)."""

    def _ev(self, seq, op, path, ftype="f", dst=None):
        from repro.fs.changelog import ChangeEvent

        return ChangeEvent(seq=seq, op=op, path=path, ino=seq,
                           ftype=ftype, dst_path=dst)

    def test_rename_remaps_earlier_dirty_paths(self):
        events = [
            self._ev(1, "create", "/a/b/f"),
            self._ev(2, "rename", "/a/b", ftype="d", dst="/c"),
        ]
        structural, dirty = reduce_events(events)
        assert structural == [("move", "/a/b", "/c")]
        assert "/c" in dirty and "/a/b" not in dirty

    def test_rmdir_drops_dirty_descendants(self):
        events = [
            self._ev(1, "create", "/a/b/f"),
            self._ev(2, "rmdir", "/a/b", ftype="d"),
        ]
        structural, dirty = reduce_events(events)
        assert structural == [("remove", "/a/b", None)]
        assert dirty == {"/a"}

    def test_metadata_on_file_dirties_parent_only(self):
        _, dirty = reduce_events([self._ev(1, "chmod", "/a/b/f")])
        assert dirty == {"/a/b"}

    def test_metadata_on_dir_dirties_itself(self):
        _, dirty = reduce_events(
            [self._ev(1, "chmod", "/a/b", ftype="d")]
        )
        assert dirty == {"/a/b"}


class TestRandomInterleavingProperty:
    """Satellite 1 proper: random mutate/apply interleavings on
    generated namespaces converge to the from-scratch rebuild."""

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        batches=st.lists(
            st.integers(min_value=1, max_value=12), min_size=1, max_size=4
        ),
    )
    def test_interleaved_applies_equal_full_rebuild(
        self, tmp_path_factory, seed, batches
    ):
        ns = dataset2(scale=0.00005, seed=seed)
        root = tmp_path_factory.mktemp("cfeq")
        index = dir2index(ns.tree, root / "idx", opts=OPTS).index
        build_tsummary(index, "/", per_user_group=True)
        journal = ChangeJournal()
        ns.tree.set_changelog(journal)
        mut = NamespaceMutator(ns, seed=seed ^ 0xC0FFEE)
        for n in batches:
            mut.mutate(n)
            changefeed2index(index, ns.tree, journal, opts=OPTS)
        assert_equivalent(index, ns.tree, root, stats_dirs=ns.dirs,
                          tsummary=True)

    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_rolled_namespace_property(self, tmp_path_factory, seed):
        ns = dataset2(scale=0.00005, seed=seed)
        root = tmp_path_factory.mktemp("cfroll")
        index = dir2index(ns.tree, root / "idx", opts=OPTS).index
        rollup(index, nthreads=NTHREADS)
        journal = ChangeJournal()
        ns.tree.set_changelog(journal)
        mut = NamespaceMutator(ns, seed=seed)
        mut.mutate(15)
        changefeed2index(index, ns.tree, journal, opts=OPTS)
        assert_equivalent(index, ns.tree, root)
