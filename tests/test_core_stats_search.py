"""Tests for the index statistics tool (gufi_stats) and the portal
search-bar query language."""

from __future__ import annotations

import pytest

from repro.core.search import SearchSyntaxError, parse
from repro.core.server import GUFIServer, IdentityProvider, QueryPortal
from repro.core.stats import _bucket, collect_stats, render_stats
from repro.core.query import GUFIQuery
from repro.core.rollup import rollup
from tests.conftest import ALICE, BOB, NTHREADS

HORIZON = 10**6  # a "now" safely past all demo-tree timestamps


class TestBucket:
    @pytest.mark.parametrize(
        "n,expect", [(0, 0), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8),
                     (1000, 1024), (1024, 1024), (1025, 2048)],
    )
    def test_power_of_two(self, n, expect):
        assert _bucket(n) == expect


class TestCollectStats:
    def test_counts_match_tree(self, demo_tree, demo_index):
        stats = collect_stats(demo_index, nthreads=NTHREADS)
        assert stats.total_dirs == demo_tree.num_dirs
        assert stats.total_files == demo_tree.num_files
        assert stats.total_links == demo_tree.num_symlinks
        expected_bytes = sum(
            i.size for _, i in demo_tree.iter_inodes() if i.ftype.value != "d"
        )
        assert stats.total_bytes == expected_bytes

    def test_per_level(self, demo_index):
        stats = collect_stats(demo_index, nthreads=NTHREADS)
        assert stats.dirs_per_level[0] == 1  # the root
        assert stats.dirs_per_level[1] == 3  # /home /proj /public
        assert stats.max_depth == 3

    def test_bytes_by_uid(self, demo_index):
        stats = collect_stats(demo_index, nthreads=NTHREADS)
        assert stats.bytes_by_uid[1001] == 100 + 250 + 700
        assert stats.entries_by_uid[1002] == 2

    def test_size_histogram_total(self, demo_tree, demo_index):
        stats = collect_stats(demo_index, nthreads=NTHREADS)
        assert sum(stats.size_histogram.values()) == demo_tree.num_files

    def test_permission_scoped(self, demo_index):
        root_stats = collect_stats(demo_index, nthreads=NTHREADS)
        bob_stats = collect_stats(demo_index, creds=BOB, nthreads=NTHREADS)
        assert bob_stats.total_dirs < root_stats.total_dirs
        assert bob_stats.total_bytes < root_stats.total_bytes
        assert 1001 not in bob_stats.bytes_by_uid or (
            bob_stats.bytes_by_uid[1001] < root_stats.bytes_by_uid[1001]
        )

    def test_stable_under_rollup(self, demo_index):
        before = collect_stats(demo_index, nthreads=NTHREADS)
        rollup(demo_index, nthreads=NTHREADS)
        after = collect_stats(demo_index, nthreads=NTHREADS)
        assert after.total_dirs == before.total_dirs
        assert after.total_bytes == before.total_bytes
        assert after.dirs_per_level == before.dirs_per_level

    def test_render(self, demo_index):
        stats = collect_stats(demo_index, nthreads=NTHREADS)
        text = render_stats(stats, users={1001: "alice"})
        assert "directories :" in text
        assert "alice" in text

    def test_top_users(self, demo_index):
        stats = collect_stats(demo_index, nthreads=NTHREADS)
        top = stats.top_users(2)
        assert top[0][1] >= top[1][1]

    def test_mean_entries(self, demo_tree, demo_index):
        stats = collect_stats(demo_index, nthreads=NTHREADS)
        expected = (demo_tree.num_files + demo_tree.num_symlinks) / demo_tree.num_dirs
        assert stats.mean_entries_per_dir == pytest.approx(expected)


class TestSearchParser:
    def test_bare_word(self):
        q = parse("report")
        assert q.filters.name_like == "%report%"

    def test_glob_name(self):
        q = parse("name:*.h5")
        assert q.filters.name_like == "%.h5"
        q2 = parse("*.txt")
        assert q2.filters.name_like == "%.txt"

    def test_question_mark_glob(self):
        assert parse("name:data?").filters.name_like == "data_"

    def test_literal_percent_escaped(self):
        q = parse("name:100%*")
        assert q.filters.name_like == "100\\%%"

    def test_sizes(self):
        q = parse("size>>100m size<<2g")
        assert q.filters.min_size == 100 * 2**20
        assert q.filters.max_size == 2 * 2**30

    def test_type_user_group(self):
        q = parse("type:f user:1001 group:100")
        assert (q.filters.ftype, q.filters.uid, q.filters.gid) == ("f", 1001, 100)

    def test_ages(self):
        q = parse("older:90d newer:365d", now=1000 * 86400)
        assert q.filters.mtime_before == (1000 - 90) * 86400
        assert q.filters.mtime_after == (1000 - 365) * 86400

    def test_age_requires_now(self):
        with pytest.raises(SearchSyntaxError):
            parse("older:90d")

    def test_xattr_and_tag(self):
        q = parse("xattr:user.experiment tag:exp-001")
        assert q.filters.xattr_name_like == "%user.experiment%"
        assert q.tag_substring == "exp-001"
        assert q.needs_xattr_values

    def test_spec_compiles(self):
        spec = parse("*.h5 size>>1k").to_spec()
        assert "vrpentries" in spec.E
        assert not spec.xattrs
        spec2 = parse("tag:exp").to_spec()
        assert spec2.xattrs and "xpentries" in spec2.E

    @pytest.mark.parametrize("bad", ["", "  ", "size>>abc", "type:x",
                                     "frob:1", "older:soon"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(SearchSyntaxError):
            parse(bad, now=0)


class TestSearchExecution:
    def test_name_search(self, demo_index):
        spec = parse("*.txt").to_spec()
        result = GUFIQuery(demo_index, nthreads=NTHREADS).run(spec)
        assert {r[0] for r in result.rows} == {
            "/home/alice/a.txt", "/home/bob/b.txt", "/public/xonly/hidden.txt",
        }

    def test_search_respects_permissions(self, demo_index):
        spec = parse("*.txt").to_spec()
        result = GUFIQuery(demo_index, creds=ALICE, nthreads=NTHREADS).run(spec)
        assert {r[0] for r in result.rows} == {
            "/home/alice/a.txt", "/home/bob/b.txt",
        }

    def test_size_and_type(self, demo_index):
        spec = parse("type:f size>>600").to_spec()
        rows = GUFIQuery(demo_index, nthreads=NTHREADS).run(spec).rows
        assert {r[0] for r in rows} == {
            "/proj/shared/p.c", "/proj/shared/data/d.h5",
        }

    def test_tag_search(self, xattr_namespace):
        ns, tagged, needle, index = xattr_namespace
        spec = parse("tag:found-me").to_spec()
        rows = GUFIQuery(index, nthreads=NTHREADS).run(spec).rows
        assert [r[0] for r in rows] == [needle]

    def test_portal_search(self, demo_index):
        idp = IdentityProvider()
        idp.add_user("alice", uid=1001, gid=1001)
        portal = QueryPortal(GUFIServer(demo_index, idp, nthreads=NTHREADS))
        result = portal.search("alice", "*.txt")
        assert len(result.rows) == 2


class TestFromPasswd:
    PASSWD = """\
# comment
root:x:0:0:root:/root:/bin/bash
alice:x:1001:1001:Alice:/home/alice:/bin/bash
bob:x:1002:1002::/home/bob:/bin/bash
broken line
"""
    GROUP = """\
proj:x:100:alice,bob
empty:x:101:
"""

    def test_load(self):
        idp = IdentityProvider.from_passwd(self.PASSWD, self.GROUP)
        alice = idp.authenticate("alice")
        assert alice.uid == 1001 and alice.in_group(100)
        bob = idp.authenticate("bob")
        assert bob.in_group(100)
        assert idp.authenticate("root").is_root

    def test_groupless(self):
        idp = IdentityProvider.from_passwd(self.PASSWD)
        assert not idp.authenticate("alice").in_group(100)
