"""Scatter-gather (``processes > 1``) equivalence and crash semantics.

The multi-process engine must be indistinguishable from a
single-process run — identical rows AND identical counters — across
the behavior matrix: privileged/unprivileged credentials × rollup
on/off × plan on/off × streamed vs in-memory sinks; plus the J/G
aggregate fold, merged stage timings and metrics, a hypothesis
property over randomly generated namespaces, and the crash contract
(a killed worker surfaces as ``dirs_errored``, never a hang).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import signal
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core.build import BuildOptions, dir2index
from repro.core.engine import (
    QueryEngine,
    QuerySpec,
    ThreadFileSink,
    Traversal,
    plan_shards,
)
from repro.core.plan import plan_for
from repro.core.query import Q1_LIST_PATHS, Q3_DU_SUMMARIES
from repro.core.rollup import rollup
from repro.core.tools import FindFilters, GUFITools
from repro.fs.permissions import ROOT
from repro.fs.tree import VFSTree

from .conftest import ALICE, CAROL_IN_PROJ, NTHREADS, build_demo_tree

PROCESSES = 3
#: fork children inherit the parent's warm DirMeta cache; spawn
#: children open the index cold, so cache-dependent counters
#: (attaches_elided, dbs_opened) legitimately diverge there
FORK = mp.get_context().get_start_method() == "fork"

FILTERS = FindFilters(min_size=600)
SPEC = QuerySpec(
    E="SELECT rpath(dname, d_isroot, name), type, size "
    f"FROM vrpentries{FILTERS.where_clause()}"
)

CREDS_CASES = [("root", ROOT), ("alice", ALICE), ("carol", CAROL_IN_PROJ)]
COUNTERS = (
    "dirs_visited",
    "dirs_denied",
    "dbs_opened",
    "dirs_errored",
    "dirs_pruned_by_plan",
    "attaches_elided",
)
#: counters whose equality does not depend on cache temperature
COLD_SAFE = ("dirs_visited", "dirs_denied", "dirs_errored",
             "dirs_pruned_by_plan")


@pytest.fixture(scope="module")
def plain_index(tmp_path_factory):
    root = tmp_path_factory.mktemp("sg_plain")
    return dir2index(
        build_demo_tree(), root / "idx", opts=BuildOptions(nthreads=NTHREADS)
    ).index


@pytest.fixture(scope="module")
def rolled_index(tmp_path_factory):
    root = tmp_path_factory.mktemp("sg_rolled")
    idx = dir2index(
        build_demo_tree(), root / "idx", opts=BuildOptions(nthreads=NTHREADS)
    ).index
    rollup(idx, nthreads=NTHREADS)
    return idx


def _index_for(request, rolled: bool):
    return request.getfixturevalue("rolled_index" if rolled else "plain_index")


def _counters(result, names=COUNTERS) -> dict:
    return {name: getattr(result, name) for name in names}


def _streamed_rows(result) -> list[str]:
    lines: list[str] = []
    for path in result.output_files or []:
        with open(path) as fh:
            lines.extend(ln.rstrip("\n") for ln in fh)
    return sorted(lines)


# ----------------------------------------------------------------------
# Shard planner
# ----------------------------------------------------------------------

def test_planner_shards_demo_tree(plain_index):
    """The demo tree is small enough that planning exhausts it: the
    complete spine enumeration is sharded, covering every directory
    exactly once."""
    trav = Traversal(plain_index, ROOT, Q1_LIST_PATHS, None, 1)
    sp = plan_shards(plain_index, trav, Q1_LIST_PATHS, "/", 1, PROCESSES)
    assert sp is not None
    assert 2 <= len(sp.shards) <= PROCESSES
    all_units = [u for shard in sp.shards for u in shard.units]
    paths = [p for p, _ in all_units]
    assert len(paths) == len(set(paths))  # no unit dispatched twice
    assert "/" in paths
    assert all(w >= 0 for w in (s.weight for s in sp.shards))


def test_planner_respects_permissions(plain_index):
    """An unprivileged planner never expands below a directory the
    caller cannot search — those units go to workers no-descend or as
    opaque recursive roots, exactly like the single-process walk."""
    trav = Traversal(plain_index, ALICE, Q1_LIST_PATHS, None, 1)
    sp = plan_shards(plain_index, trav, Q1_LIST_PATHS, "/", 1, PROCESSES)
    if sp is None:
        pytest.skip("tree too narrow for this planner shape")
    paths = [p for shard in sp.shards for p, _ in shard.units]
    # alice cannot search /home/bob/secret: nothing below it planned
    assert not any(p.startswith("/home/bob/secret/") for p in paths)


def test_planner_narrow_tree_returns_none(tmp_path):
    t = VFSTree()
    t.create_file("/only.txt", size=10, mode=0o644, uid=0, gid=0)
    index = dir2index(
        t, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
    ).index
    trav = Traversal(index, ROOT, Q1_LIST_PATHS, None, 1)
    assert plan_shards(index, trav, Q1_LIST_PATHS, "/", 1, PROCESSES) is None


# ----------------------------------------------------------------------
# Equivalence matrix
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "who,rolled,planned,streamed",
    [
        pytest.param(
            who, rolled, planned, streamed,
            id=f"{who}-{'rollup' if rolled else 'plain'}"
            f"-{'plan' if planned else 'noplan'}"
            f"-{'stream' if streamed else 'memory'}",
        )
        for (who, _), rolled, planned, streamed in itertools.product(
            CREDS_CASES, (False, True), (False, True), (False, True)
        )
    ],
)
def test_run_matrix(request, tmp_path, who, rolled, planned, streamed):
    """Same rows, same counters, one process or many."""
    index = _index_for(request, rolled)
    creds = dict(CREDS_CASES)[who]
    plan = plan_for(FILTERS) if planned else None

    with QueryEngine(index, creds=creds, nthreads=NTHREADS) as warm:
        # one warm-up pass so the single-process run and the forked
        # workers (which inherit the cache) see the same cache state
        warm.run(SPEC, plan=plan)

    with QueryEngine(index, creds=creds, nthreads=NTHREADS) as single, \
            QueryEngine(
                index, creds=creds, nthreads=NTHREADS, processes=PROCESSES
            ) as multi:
        assert multi.processes == PROCESSES
        if streamed:
            sp = single.run(
                SPEC, plan=plan, sink=ThreadFileSink(str(tmp_path / "sp"))
            )
            mp_ = multi.run(
                SPEC, plan=plan, sink=ThreadFileSink(str(tmp_path / "mp"))
            )
            assert _streamed_rows(sp) == _streamed_rows(mp_)
            assert sp.rows == mp_.rows == []
        else:
            sp = single.run(SPEC, plan=plan)
            mp_ = multi.run(SPEC, plan=plan)
            assert sorted(sp.rows) == sorted(mp_.rows)
        if FORK:
            assert _counters(sp) == _counters(mp_)
        else:
            assert _counters(sp, COLD_SAFE) == _counters(mp_, COLD_SAFE)
        assert not sp.truncated and not mp_.truncated
        if who == "root":
            assert mp_.dirs_denied == 0
        if not planned:
            assert mp_.dirs_pruned_by_plan == 0
            assert mp_.attaches_elided == 0


def test_aggregate_join_final_fold(plain_index):
    """J/G specs: per-worker aggregates row-union into one parent
    aggregate, G runs exactly once — the du total is identical."""
    for creds in (ROOT, CAROL_IN_PROJ):
        with QueryEngine(plain_index, creds=creds, nthreads=NTHREADS) as single, \
                QueryEngine(
                    plain_index, creds=creds,
                    nthreads=NTHREADS, processes=PROCESSES,
                ) as multi:
            sp = single.run(Q3_DU_SUMMARIES)
            mp_ = multi.run(Q3_DU_SUMMARIES)
            assert sp.scalar() == mp_.scalar()
            assert len(mp_.rows) == 1


def test_tools_thread_processes_through(plain_index):
    """GUFITools(processes=N) routes every canned query through the
    scatter path with unchanged answers."""
    with GUFITools(plain_index, nthreads=NTHREADS) as single, \
            GUFITools(
                plain_index, nthreads=NTHREADS, processes=PROCESSES
            ) as multi:
        assert single.du("/") == multi.du("/")
        assert sorted(single.find("/", FILTERS).rows) == sorted(
            multi.find("/", FILTERS).rows
        )
        assert single.query.processes == 1
        assert multi.query.processes == PROCESSES


def test_stage_seconds_and_merged_metrics(plain_index):
    """With metrics on: stage timings cover all five stages (T/S/E/J
    summed across workers, G timed in the parent), the scatter counters
    record the fan-out, and worker snapshots fold into the parent
    registry."""
    with obs.enabled(metrics=True):
        with QueryEngine(
            plain_index, nthreads=NTHREADS, processes=PROCESSES
        ) as multi:
            result = multi.run(Q3_DU_SUMMARIES)
        snap = obs.snapshot()
    assert result.stage_seconds is not None
    assert set(result.stage_seconds) == {"T", "S", "E", "J", "G"}
    assert all(v >= 0.0 for v in result.stage_seconds.values())
    assert snap.counter("gufi_scatter_runs_total") == 1
    assert snap.counter("gufi_scatter_shards_total") >= 2
    assert snap.counter("gufi_scatter_worker_crashes_total") == 0
    # worker-side walker/session tallies arrived via snapshot merge
    assert snap.counter_total("gufi_walker_items_total") > 0
    # the parent's whole-query span is the only query.run recorded
    assert snap.counter("gufi_query_runs_total", kind="query.run") == 1


def test_walk_stats_account_for_all_workers(plain_index):
    with QueryEngine(
        plain_index, nthreads=NTHREADS, processes=PROCESSES
    ) as multi:
        result = multi.run(Q1_LIST_PATHS)
    walk = result.walk_stats
    assert walk is not None
    assert walk.items_processed == result.dirs_visited
    assert sum(walk.items_per_thread.values()) >= result.dirs_visited
    assert len(walk.thread_completion_times) >= 2


def test_narrow_tree_falls_back_to_single_process(tmp_path):
    """A tree too narrow to shard runs single-process through the same
    sink — correct rows, no error, no deadlock."""
    t = VFSTree()
    t.create_file("/only.txt", size=10, mode=0o644, uid=0, gid=0)
    index = dir2index(
        t, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
    ).index
    with QueryEngine(index, nthreads=NTHREADS, processes=PROCESSES) as q:
        result = q.run(Q1_LIST_PATHS)
    assert [r[0] for r in result.rows] == ["/only.txt"]


# ----------------------------------------------------------------------
# Crash semantics
# ----------------------------------------------------------------------

def _kill_worker_zero(worker_id: int) -> None:
    """Module-level (hence picklable) crash hook: worker 0 dies before
    doing any work, exactly like an OOM kill."""
    if worker_id == 0:
        os.kill(os.getpid(), signal.SIGKILL)


def _fail_worker_zero(worker_id: int) -> None:
    if worker_id == 0:
        raise ValueError("injected worker failure")


def test_killed_worker_counts_errored_not_hang(plain_index):
    with QueryEngine(
        plain_index, nthreads=NTHREADS, processes=PROCESSES
    ) as single_ref:
        full = sorted(single_ref.run(Q1_LIST_PATHS).rows)

    with obs.enabled(metrics=True):
        with QueryEngine(
            plain_index, nthreads=NTHREADS, processes=PROCESSES
        ) as multi:
            multi._scatter().worker_init = _kill_worker_zero
            result = multi.run(Q1_LIST_PATHS)
        snap = obs.snapshot()
    # the dead worker's whole shard is accounted as errored…
    assert result.dirs_errored > 0
    assert snap.counter("gufi_scatter_worker_crashes_total") == 1
    # …and the surviving workers' rows still came through
    assert set(result.rows) < set(full)
    assert (
        result.dirs_visited + result.dirs_errored
        >= len({r[0] for r in full})  # every unit is visited or errored
    )


def test_worker_exception_reraises_in_parent(plain_index):
    with QueryEngine(
        plain_index, nthreads=NTHREADS, processes=PROCESSES
    ) as multi:
        multi._scatter().worker_init = _fail_worker_zero
        with pytest.raises(RuntimeError, match="scatter worker"):
            multi.run(Q1_LIST_PATHS)
        # the engine (and its sinks) survive a failed run
        multi._scatter().worker_init = None
        ok = multi.run(Q1_LIST_PATHS)
        assert ok.dirs_errored == 0 and ok.rows


# ----------------------------------------------------------------------
# Property: random namespaces
# ----------------------------------------------------------------------

_IDENTITIES = [(0, 0), (1001, 1001), (1003, 100)]
_DIR_MODES = [0o755, 0o700, 0o770, 0o711, 0o644]


@st.composite
def namespaces(draw) -> VFSTree:
    """Small random trees with adversarial permission shapes: private,
    group-shared, search-only, and list-only directories at both
    levels."""
    t = VFSTree()
    for i in range(draw(st.integers(2, 5))):
        uid, gid = draw(st.sampled_from(_IDENTITIES))
        t.mkdir(f"/d{i}", mode=draw(st.sampled_from(_DIR_MODES)),
                uid=uid, gid=gid)
        for j in range(draw(st.integers(0, 2))):
            t.create_file(
                f"/d{i}/f{j}", size=draw(st.integers(0, 2000)),
                mode=0o644, uid=uid, gid=gid,
            )
        for k in range(draw(st.integers(0, 2))):
            uid2, gid2 = draw(st.sampled_from(_IDENTITIES))
            t.mkdir(f"/d{i}/s{k}", mode=draw(st.sampled_from(_DIR_MODES)),
                    uid=uid2, gid=gid2)
            for j in range(draw(st.integers(0, 2))):
                t.create_file(
                    f"/d{i}/s{k}/g{j}", size=draw(st.integers(0, 2000)),
                    mode=0o640, uid=uid2, gid=gid2,
                )
    return t


@settings(max_examples=6, deadline=None)
@given(tree=namespaces(), who=st.sampled_from([w for w, _ in CREDS_CASES]))
def test_property_random_namespaces(tree, who):
    """For any generated namespace and any caller, scatter-gather
    returns the single-process rows and counters."""
    creds = dict(CREDS_CASES)[who]
    with tempfile.TemporaryDirectory() as td:
        index = dir2index(
            tree, Path(td) / "idx", opts=BuildOptions(nthreads=NTHREADS)
        ).index
        with QueryEngine(index, creds=creds, nthreads=NTHREADS) as single, \
                QueryEngine(
                    index, creds=creds,
                    nthreads=NTHREADS, processes=PROCESSES,
                ) as multi:
            sp = single.run(Q1_LIST_PATHS)
            mp_ = multi.run(Q1_LIST_PATHS)
            assert sorted(sp.rows) == sorted(mp_.rows)
            # no plan, no cache-dependence: all six counters must agree
            assert _counters(sp) == _counters(mp_)


# ----------------------------------------------------------------------
# Fork-inherited cache staleness (ISSUE 8 satellite)
# ----------------------------------------------------------------------
# Workers forked for a run inherit the parent engine's warm index —
# DirMeta cache included — through ``_FORK_INDEX``. A run issued after
# an incremental refresh must therefore never let a child serve the
# parent's pre-refresh cache state: every inherited DirMeta is
# re-validated against the rebuilt database's stamp.


@pytest.mark.skipif(not FORK, reason="inheritance requires fork start")
class TestForkInheritedStaleness:
    def _fresh(self, tmp_path):
        from repro.fs.changelog import ChangeJournal

        tree = build_demo_tree()
        index = dir2index(
            tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
        ).index
        journal = ChangeJournal()
        tree.set_changelog(journal)
        return tree, index, journal

    def _cold_rows(self, index, creds=ROOT):
        with QueryEngine(index, creds=creds, nthreads=NTHREADS) as eng:
            return sorted(eng.run(Q1_LIST_PATHS).rows)

    def test_workers_see_incremental_refresh(self, tmp_path):
        from repro.core.changefeed import changefeed2index

        tree, index, journal = self._fresh(tmp_path)
        with QueryEngine(
            index, nthreads=NTHREADS, processes=PROCESSES
        ) as multi:
            before = sorted(multi.run(Q1_LIST_PATHS).rows)
            tree.create_file("/public/after-refresh.txt", size=9,
                             uid=0, gid=0)
            tree.unlink("/public/readme")
            changefeed2index(index, tree, journal,
                             opts=BuildOptions(nthreads=NTHREADS))
            after = sorted(multi.run(Q1_LIST_PATHS).rows)
            assert after != before
            assert after == self._cold_rows(index)
            flat = [str(r[0]) for r in after]
            assert any("after-refresh.txt" in p for p in flat)
            assert not any(p.endswith("/readme") for p in flat)

    def test_warm_parent_cache_not_inherited_stale(self, tmp_path):
        """Deliberately warm the parent's DirMeta cache single-process
        first, then refresh, then fork: the children inherit the warm
        (now stale) cache and must still answer post-refresh."""
        from repro.core.changefeed import changefeed2index

        tree, index, journal = self._fresh(tmp_path)
        with QueryEngine(index, nthreads=NTHREADS) as warmer:
            warmer.run(Q1_LIST_PATHS)  # fills index.cache
        tree.create_file("/proj/shared/new.dat", size=1234,
                         uid=1001, gid=100)
        changefeed2index(index, tree, journal,
                         opts=BuildOptions(nthreads=NTHREADS))
        with QueryEngine(
            index, nthreads=NTHREADS, processes=PROCESSES
        ) as multi:
            rows = sorted(multi.run(Q1_LIST_PATHS).rows)
        assert rows == self._cold_rows(index)
        assert any("new.dat" in str(r[0]) for r in rows)

    def test_foreign_handle_apply_not_masked_by_inherited_cache(
        self, tmp_path
    ):
        """The refresh lands through a *different* index handle, so no
        invalidation hook reaches the querying engine; the inherited
        DirMeta entries are stale and only stamp validation stands
        between the workers and wrong answers."""
        from repro.core.changefeed import changefeed2index
        from repro.core.index import GUFIIndex

        tree, index, journal = self._fresh(tmp_path)
        with QueryEngine(
            index, nthreads=NTHREADS, processes=PROCESSES
        ) as multi:
            multi.run(Q1_LIST_PATHS)  # warm parent + verify plumbing
            tree.create_file("/home/bob/fresh.log", size=77,
                             uid=1002, gid=1002)
            other = GUFIIndex.open(index.root)
            changefeed2index(other, tree, journal,
                             opts=BuildOptions(nthreads=NTHREADS))
            rows = sorted(multi.run(Q1_LIST_PATHS).rows)
            assert any("fresh.log" in str(r[0]) for r in rows)
            assert rows == self._cold_rows(index)

    def test_result_cache_multiprocess_refresh(self, tmp_path):
        """Tentpole x satellite: a cached multi-process engine must
        re-gather (not replay) after an incremental refresh."""
        from repro.core.changefeed import changefeed2index
        from repro.core.engine import ResultCache

        tree, index, journal = self._fresh(tmp_path)
        cache = ResultCache(journal=journal)
        with QueryEngine(
            index, nthreads=NTHREADS, processes=PROCESSES,
            result_cache=cache,
        ) as multi:
            multi.run(Q1_LIST_PATHS)
            assert multi.run(Q1_LIST_PATHS).cached
            tree.create_file("/public/cachebust.txt", size=5,
                             uid=0, gid=0)
            changefeed2index(index, tree, journal,
                             opts=BuildOptions(nthreads=NTHREADS))
            res = multi.run(Q1_LIST_PATHS)
            assert not res.cached
            assert any("cachebust.txt" in str(r[0]) for r in res.rows)
            assert sorted(res.rows) == self._cold_rows(index)
