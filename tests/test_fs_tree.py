"""Unit tests for the simulated POSIX tree: namespace operations,
permission enforcement on every syscall-equivalent, error semantics."""

from __future__ import annotations

import pytest

from repro.fs.errors import (
    AlreadyExists,
    InvalidArgument,
    IsADirectory,
    NoSuchEntry,
    NotADirectory,
    NotEmpty,
    PermissionDenied,
    TooManyLinks,
)
from repro.fs.inode import FileType
from repro.fs.permissions import Credentials
from repro.fs.tree import VFSTree

ALICE = Credentials(uid=1001, gid=1001)
BOB = Credentials(uid=1002, gid=1002)


@pytest.fixture
def tree():
    t = VFSTree()
    t.mkdir("/a", mode=0o755, uid=1001, gid=1001)
    t.create_file("/a/f1", size=10, mode=0o644, uid=1001, gid=1001)
    return t


class TestCreation:
    def test_mkdir_and_stat(self, tree):
        st = tree.stat("/a")
        assert st.ftype is FileType.DIRECTORY
        assert st.perm == 0o755
        assert st.st_uid == 1001

    def test_makedirs(self, tree):
        tree.makedirs("/x/y/z")
        assert tree.stat("/x/y/z").ftype is FileType.DIRECTORY

    def test_makedirs_idempotent(self, tree):
        tree.makedirs("/x/y")
        tree.makedirs("/x/y")  # no error
        assert tree.exists("/x/y")

    def test_create_file_size_and_blocks(self, tree):
        tree.create_file("/a/big", size=1024)
        st = tree.stat("/a/big")
        assert st.st_size == 1024
        assert st.st_blocks == 2  # 512-byte units

    def test_duplicate_raises(self, tree):
        with pytest.raises(AlreadyExists):
            tree.create_file("/a/f1")

    def test_create_under_file_raises(self, tree):
        with pytest.raises(NotADirectory):
            tree.create_file("/a/f1/x")

    def test_relative_path_rejected(self, tree):
        with pytest.raises(InvalidArgument):
            tree.stat("a/f1")

    def test_nlink_counts_subdirs(self, tree):
        assert tree.stat("/a").st_nlink == 2
        tree.mkdir("/a/sub1")
        tree.mkdir("/a/sub2")
        assert tree.stat("/a").st_nlink == 4

    def test_counters(self, tree):
        assert tree.num_dirs == 2  # / and /a
        assert tree.num_files == 1
        tree.symlink("/a/l1", "/a/f1")
        assert tree.num_symlinks == 1

    def test_explicit_ownership_override(self, tree):
        tree.create_file("/a/owned", uid=42, gid=43)
        st = tree.stat("/a/owned")
        assert (st.st_uid, st.st_gid) == (42, 43)


class TestSymlinks:
    def test_follow_on_stat(self, tree):
        tree.symlink("/a/l", "/a/f1")
        assert tree.stat("/a/l").st_size == 10
        assert tree.lstat("/a/l").ftype is FileType.SYMLINK

    def test_readlink(self, tree):
        tree.symlink("/a/l", "/a/f1")
        assert tree.readlink("/a/l") == "/a/f1"

    def test_relative_target(self, tree):
        tree.symlink("/a/l", "f1")
        assert tree.stat("/a/l").st_size == 10

    def test_dangling(self, tree):
        tree.symlink("/a/l", "/nope")
        with pytest.raises(NoSuchEntry):
            tree.stat("/a/l")

    def test_loop_detected(self, tree):
        tree.symlink("/a/l1", "/a/l2")
        tree.symlink("/a/l2", "/a/l1")
        with pytest.raises(TooManyLinks):
            tree.stat("/a/l1")

    def test_symlink_through_path(self, tree):
        tree.mkdir("/target")
        tree.create_file("/target/t.txt", size=5)
        tree.symlink("/a/dirlink", "/target")
        assert tree.stat("/a/dirlink/t.txt").st_size == 5


class TestRemoval:
    def test_unlink(self, tree):
        tree.unlink("/a/f1")
        assert not tree.exists("/a/f1")
        assert tree.num_files == 0

    def test_unlink_directory_raises(self, tree):
        with pytest.raises(IsADirectory):
            tree.unlink("/a")

    def test_rmdir_nonempty_raises(self, tree):
        with pytest.raises(NotEmpty):
            tree.rmdir("/a")

    def test_rmdir(self, tree):
        tree.mkdir("/a/sub")
        tree.rmdir("/a/sub")
        assert not tree.exists("/a/sub")
        assert tree.stat("/a").st_nlink == 2

    def test_rmdir_file_raises(self, tree):
        with pytest.raises(NotADirectory):
            tree.rmdir("/a/f1")


class TestPermissionEnforcement:
    def test_stat_needs_ancestor_search(self):
        t = VFSTree()
        t.mkdir("/private", mode=0o700, uid=1001, gid=1001)
        t.create_file("/private/f", size=1, uid=1001, gid=1001)
        with pytest.raises(PermissionDenied):
            t.stat("/private/f", BOB)
        # owner and root are fine
        assert t.stat("/private/f", ALICE).st_size == 1
        assert t.stat("/private/f").st_size == 1

    def test_stat_does_not_need_entry_read(self):
        # §III-A1: stat requires ancestor x bits, not the entry's r bit.
        t = VFSTree()
        t.mkdir("/open", mode=0o755, uid=0, gid=0)
        t.create_file("/open/locked", size=9, mode=0o000, uid=1001, gid=1001)
        assert t.stat("/open/locked", BOB).st_size == 9

    def test_readdir_needs_read_bit(self):
        t = VFSTree()
        t.mkdir("/xonly", mode=0o711, uid=0, gid=0)
        t.create_file("/xonly/f", size=1)
        with pytest.raises(PermissionDenied):
            t.readdir("/xonly", BOB)
        # but a known name inside is stat-able (x grants traversal)
        assert t.stat("/xonly/f", BOB).st_size == 1

    def test_create_needs_parent_write(self):
        t = VFSTree()
        t.mkdir("/ro", mode=0o755, uid=0, gid=0)
        with pytest.raises(PermissionDenied):
            t.create_file("/ro/new", creds=BOB)

    def test_chmod_owner_only(self, tree):
        with pytest.raises(PermissionDenied):
            tree.chmod("/a/f1", 0o600, BOB)
        tree.chmod("/a/f1", 0o600, ALICE)
        assert tree.stat("/a/f1").perm == 0o600

    def test_chown_root_only(self, tree):
        with pytest.raises(PermissionDenied):
            tree.chown("/a/f1", 1, 1, ALICE)
        tree.chown("/a/f1", 1, 1)
        assert tree.stat("/a/f1").st_uid == 1

    def test_unlink_needs_parent_write(self):
        t = VFSTree()
        t.mkdir("/d", mode=0o755, uid=1001, gid=1001)
        t.create_file("/d/f", uid=1002, gid=1002, mode=0o666)
        with pytest.raises(PermissionDenied):
            t.unlink("/d/f", BOB)  # file writable but dir isn't
        t.unlink("/d/f", ALICE)


class TestWalk:
    def test_walk_order_and_coverage(self, tree):
        tree.mkdir("/a/s1")
        tree.mkdir("/a/s2")
        tree.create_file("/a/s1/x")
        walked = list(tree.walk("/"))
        paths = [w[0] for w in walked]
        assert paths[0] == "/"
        assert set(paths) == {"/", "/a", "/a/s1", "/a/s2"}
        byp = {w[0]: w for w in walked}
        assert byp["/a"][1] == ["s1", "s2"]
        assert byp["/a"][2] == ["f1"]

    def test_walk_skips_denied(self):
        t = VFSTree()
        t.mkdir("/secret", mode=0o700, uid=1001, gid=1001)
        t.mkdir("/secret/inner", mode=0o755, uid=1001, gid=1001)
        t.mkdir("/open", mode=0o755)
        paths = [w[0] for w in t.walk("/", BOB)]
        assert "/secret" not in paths  # listed name but unreadable dir
        assert "/open" in paths

    def test_iter_inodes_complete(self, tree):
        tree.mkdir("/a/sub")
        entries = dict(tree.iter_inodes())
        assert set(entries) == {"/", "/a", "/a/f1", "/a/sub"}


class TestTimestamps:
    def test_monotone_clock(self, tree):
        st1 = tree.stat("/a/f1")
        tree.create_file("/a/f2")
        st2 = tree.stat("/a/f2")
        assert st2.st_ctime > st1.st_ctime

    def test_utime(self, tree):
        tree.utime("/a/f1", atime=5, mtime=7, creds=ALICE)
        st = tree.stat("/a/f1")
        assert (st.st_atime, st.st_mtime) == (5, 7)

    def test_set_time_only_forward(self, tree):
        tree.set_time(10_000)
        tree.set_time(5)  # ignored
        tree.create_file("/a/new")
        assert tree.stat("/a/new").st_mtime > 10_000
