"""Smoke tests for the runnable examples — each must complete and
print its OK marker (they are deliverables, so they are tested)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

pytestmark = pytest.mark.harness  # slow: each builds real indexes


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "user_search.py",
        "admin_reports.py",
        "incremental_update.py",
        "datacenter_search.py",
        "operations.py",
    ],
)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "OK" in proc.stdout
