"""Tests for the experiment harness: result-table rendering and each
figure driver at tiny scale (shape checks, not absolute numbers)."""

from __future__ import annotations

import pytest

from repro.harness import (
    ResultTable,
    fig1,
    fig7,
    fig8,
    fig9,
    fig10,
    fmt_bytes,
    fmt_duration,
    ingest_rate,
    rollup_reduction,
    table1,
)

pytestmark = pytest.mark.harness


class TestResultTable:
    def test_add_and_render(self):
        t = ResultTable(title="T", columns=["a", "b"])
        t.add("x", 1.5)
        t.add("y", 12345)
        t.note("hello")
        out = t.render()
        assert "T" in out and "1.50" in out and "12,345" in out
        assert "note: hello" in out

    def test_wrong_arity(self):
        t = ResultTable(title="T", columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_column_access(self):
        t = ResultTable(title="T", columns=["a", "b"])
        t.add("x", 1)
        t.add("y", 2)
        assert t.column("b") == [1, 2]

    def test_markdown(self):
        t = ResultTable(title="T", columns=["a"])
        t.add(3.14159)
        md = t.to_markdown()
        assert md.startswith("### T")
        assert "| 3.14 |" in md

    def test_formatters(self):
        assert fmt_bytes(2048) == "2.0 KiB"
        assert fmt_bytes(3.5e9).endswith("GiB")
        assert fmt_duration(0.5e-3) == "500 µs"
        assert fmt_duration(65) == "65.00 s"
        assert fmt_duration(600).endswith("min")


class TestFig1:
    def test_shape(self):
        t = fig1(scale=0.03, nthreads=2)
        times = dict(zip(t.column("system"), t.column("find -ls (s)")))
        # the paper's ordering: parallel FS >> NFS >> local/GUFI
        assert times["gpfs"] > times["nfs"] > times["xfs-local"]
        assert times["lustre"] > times["xfs-local"]
        assert times["gufi (modelled)"] < times["nfs"]


class TestTable1:
    def test_all_filesystems_present(self):
        t = table1(scale=3e-5, nthreads=2)
        assert len(t.rows) == 5
        kinds = set(t.column("scan type"))
        assert kinds == {"treewalk", "lester", "sql"}


class TestFig7:
    def test_saturation_shape(self):
        t = fig7(scale=0.0005, thread_counts=(1, 56, 112, 224, 896),
                 host_configs=(1, 2, 4))
        util1 = dict(zip(t.column("threads"), t.column("util% (1 SSD)")))
        util4 = dict(zip(t.column("threads"), t.column("util% (4 SSD)")))
        assert util1[1] < 5
        assert util1[112] > 95  # saturation near 112 threads
        assert util1[896] == pytest.approx(util1[224])
        # 4 SSDs: host-limited well below the device ceiling
        assert util4[896] < 60


class TestFig8:
    def test_tradeoff_shape(self):
        table, fig8c, completions = fig8(
            scale=0.00005, nthreads=2, n_shards=8,
            limit_fractions=(0.0, 0.05, None),
        )
        configs = table.column("config")
        assert configs[0] == "NONE" and "MAX" in configs
        dbs = dict(zip(configs, table.column("visible DBs")))
        assert dbs["MAX"] < dbs["NONE"]
        bpe = dict(zip(configs, table.column("bytes/entry")))
        # bytes/entry falls monotonically with the rollup limit
        gufi_bpe = [bpe[c] for c in configs if not c.startswith("brindexer")]
        assert gufi_bpe == sorted(gufi_bpe, reverse=True)
        # rollup closes (more than halves) the gap to Brindexer; the
        # paper's full crossover needs production-depth paths — see
        # EXPERIMENTS.md
        brin = next(c for c in configs if c.startswith("brindexer"))
        assert (bpe["MAX"] - bpe[brin]) < 0.5 * (bpe["NONE"] - bpe[brin])
        assert set(completions) >= {"NONE", "MAX", "brindexer"}
        assert len(fig8c.rows) >= 3


class TestFig9:
    def test_proportionality_shape(self):
        t = fig9(scale=0.0001, coverages=(0.25, 1.0), nthreads=2)
        xfs = t.column("xfs find+getfattr (s)")
        gufi_modelled = t.column("gufi scan modelled (s)")
        # XFS cost ~constant across coverage; GUFI modelled cost grows
        # with coverage but stays below the XFS walk
        assert xfs[0] == pytest.approx(xfs[1], rel=0.15)
        assert all(g < x for g, x in zip(gufi_modelled, xfs))
        # the paper's two figure shapes: the speedup over XFS shrinks
        # as coverage grows (33x -> 12x), and the stab query beats the
        # scan because it emits ~no rows (2-5x)
        speedups = t.column("modelled speedup vs xfs")
        assert speedups[0] > speedups[1]
        gains = t.column("modelled scan/stab")
        assert all(g > 1.2 for g in gains)
        assert gains[1] > gains[0]  # gap grows with coverage


class TestFig10:
    def test_speedup_shape(self):
        a, b = fig10(scale=0.00005, nthreads=2, n_shards=16, n_users=3,
                     rollup_fraction=1 / 50)
        speedups = a.column("modelled speedup")
        assert len(speedups) == 4
        # Q1-Q3 sit near parity at this scale (the paper's 1.5-8.2x
        # needs its 64.7M-row volumes; see EXPERIMENTS.md) — assert no
        # catastrophic loss and Q4's tsummary dominance
        assert all(s > 0.4 for s in speedups[:3])
        assert speedups[3] == max(speedups)
        assert speedups[3] > 10 * max(speedups[:3])
        # proportionality: unprivileged users' summary-backed queries
        # (2-4) gain at least as much as root's (their traversal
        # shrinks; Brindexer's never does)
        user_speedups = b.column("modelled speedup")
        assert user_speedups[3] > 10
        assert sum(user_speedups[1:3]) >= 0.8 * sum(speedups[1:3])


class TestTextClaims:
    def test_rollup_reduction_runs(self):
        t = rollup_reduction(scale=4e-5, nthreads=2)
        assert len(t.rows) == 5
        factors = [float(str(f).rstrip("x")) for f in t.column("reduction")]
        assert all(f >= 1 for f in factors)

    def test_ingest_rate(self):
        t = ingest_rate(n_dirs=60, files_per_dir=20, nthreads=2)
        assert t.rows[0][3] > 0  # dirs/s
        assert t.rows[0][4] > 0  # rows/s
