"""Tests for the persistent query session layer: thread-state pool
reuse, scratch-schema recycling between runs, warm-equals-cold results,
output-file handling across runs, and server-side session caching."""

from __future__ import annotations

import os

import pytest

from repro.core.query import (
    GUFIQuery,
    Q1_LIST_PATHS,
    Q3_DU_SUMMARIES,
    QuerySpec,
)
from repro.core.server import GUFIServer, IdentityProvider
from repro.core.session import QuerySession
from tests.conftest import ALICE, BOB, NTHREADS


class TestPoolReuse:
    def test_connections_survive_across_runs(self, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        first = sorted(q.run(Q1_LIST_PATHS).rows)
        created_after_first = q.pool.created
        assert created_after_first >= 1
        for _ in range(5):
            assert sorted(q.run(Q1_LIST_PATHS).rows) == first
        # warm runs check states out of the free list; no new
        # connections, no new scratch databases
        assert q.pool.created == created_after_first
        assert q.pool.reused > 0
        q.close()

    def test_scratch_tables_recycled_same_spec(self, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        totals = {q.run(Q3_DU_SUMMARIES).rows[-1][0] for _ in range(4)}
        # stale scratch rows from a previous run would inflate the sum
        assert len(totals) == 1
        q.close()

    def test_scratch_schema_swapped_between_different_specs(self, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        a = QuerySpec(
            I="CREATE TABLE t_a (n INTEGER)",
            E="INSERT INTO t_a SELECT COUNT(*) FROM pentries",
            J="INSERT INTO aggregate.t_a SELECT TOTAL(n) FROM t_a",
            G="SELECT TOTAL(n) FROM t_a",
        )
        b = QuerySpec(
            I="CREATE TABLE t_b (x TEXT)",
            E="INSERT INTO t_b SELECT name FROM pentries",
            J="INSERT INTO aggregate.t_b SELECT x FROM t_b",
            G="SELECT COUNT(*) FROM t_b",
        )
        na = q.run(a).rows[-1][0]
        nb = q.run(b).rows[-1][0]
        assert na == nb == 9  # all demo entries
        # and back again: t_b must be gone, t_a recreated fresh
        assert q.run(a).rows[-1][0] == 9
        q.close()

    def test_interleaved_i_and_no_i_specs(self, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        with_i = q.run(Q3_DU_SUMMARIES).rows[-1][0]
        assert q.run(Q1_LIST_PATHS).rows  # no I: scratch dropped
        assert q.run(Q3_DU_SUMMARIES).rows[-1][0] == with_i
        q.close()

    def test_close_is_idempotent_and_frees_tmpdir(self, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        q.run(Q1_LIST_PATHS)
        tmpdir = q.pool.tmpdir
        assert os.path.isdir(tmpdir)
        q.close()
        q.close()
        assert not os.path.exists(tmpdir)

    def test_run_after_close_raises(self, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        q.run(Q1_LIST_PATHS)
        q.close()
        with pytest.raises(RuntimeError):
            q.run(Q1_LIST_PATHS)

    def test_failed_run_does_not_poison_session(self, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        good = sorted(q.run(Q1_LIST_PATHS).rows)
        with pytest.raises(RuntimeError):
            q.run(QuerySpec(E="SELECT nonsense FROM nowhere"))
        assert sorted(q.run(Q1_LIST_PATHS).rows) == good
        q.close()

    def test_run_single_reuses_pool_and_times_itself(self, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        spec = QuerySpec(E="SELECT name FROM entries ORDER BY name")
        r1 = q.run_single(spec, "/home/bob")
        created = q.pool.created
        r2 = q.run_single(spec, "/home/bob")
        assert r1.rows == r2.rows == [("b.txt",)]
        assert q.pool.created == created
        # the satellite bugfix: elapsed is measured, not hardcoded 0.0
        assert r1.elapsed > 0.0 and r2.elapsed > 0.0
        q.close()


class TestOutputFilesAcrossRuns:
    def test_same_prefix_truncates_between_runs(self, demo_index, tmp_path):
        spec = QuerySpec(
            E="SELECT rpath(dname, d_isroot, name) FROM vrpentries",
            output_prefix=str(tmp_path / "out"),
        )
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        r1 = q.run(spec)
        lines1 = sorted(
            ln for p in r1.output_files for ln in open(p).read().splitlines()
        )
        r2 = q.run(spec)
        lines2 = sorted(
            ln for p in r2.output_files for ln in open(p).read().splitlines()
        )
        # rerun replaces, never appends/duplicates
        assert lines1 == lines2
        q.close()

    def test_output_files_recorded_when_merge_stage_fails(
        self, demo_index, tmp_path
    ):
        """Satellite bugfix: the J stage raising must not lose or leave
        unflushed the per-thread output files."""
        spec = QuerySpec(
            E="SELECT name FROM pentries",
            J="INSERT INTO nonsense_table SELECT 1",
            output_prefix=str(tmp_path / "o"),
        )
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        import sqlite3

        with pytest.raises(sqlite3.Error):
            q.run(spec)
        files = sorted(
            str(tmp_path / f)
            for f in os.listdir(tmp_path)
            if f.startswith("o.")
        )
        assert files  # streamed output exists on disk...
        total = sum(len(open(f).read().splitlines()) for f in files)
        assert total == 9  # ...and is complete (flushed) despite the raise
        q.close()


class TestQuerySessionFacade:
    def test_context_manager_runs_and_cleans_up(self, demo_index):
        with QuerySession(demo_index, creds=BOB, nthreads=NTHREADS) as s:
            rows = s.run(Q1_LIST_PATHS).rows
            assert rows
            tmpdir = s.pool.tmpdir
        assert not os.path.exists(tmpdir)

    def test_cache_stats_exposed(self, demo_index):
        with QuerySession(demo_index, nthreads=NTHREADS) as s:
            s.run(Q1_LIST_PATHS)
            s.run(Q1_LIST_PATHS)
            stats = s.cache_stats
        assert stats["meta_hits"] > 0


def _make_server(index):
    idp = IdentityProvider()
    idp.add_user("alice", uid=ALICE.uid, gid=ALICE.gid)
    idp.add_user("bob", uid=BOB.uid, gid=BOB.gid)
    return GUFIServer(index, idp, nthreads=NTHREADS)


class TestServerSessions:
    def test_repeat_invocations_reuse_one_session(self, demo_index):
        with _make_server(demo_index) as server:
            r1 = server.invoke("bob", "query", "/", spec=Q1_LIST_PATHS)
            tools = server._sessions[(BOB.uid, BOB.gid, BOB.groups)]
            created = tools.query.pool.created
            r2 = server.invoke("bob", "query", "/", spec=Q1_LIST_PATHS)
            assert sorted(r1.rows) == sorted(r2.rows)
            assert server._sessions[(BOB.uid, BOB.gid, BOB.groups)] is tools
            assert tools.query.pool.created == created
            assert len(server.audit_log) == 2

    def test_disabled_user_blocked_despite_warm_session(self, demo_index):
        from repro.core.server import AuthenticationError

        with _make_server(demo_index) as server:
            server.invoke("bob", "query", "/", spec=Q1_LIST_PATHS)
            server.identity.disable("bob")
            with pytest.raises(AuthenticationError):
                server.invoke("bob", "query", "/", spec=Q1_LIST_PATHS)

    def test_group_change_yields_new_session_with_new_access(self, demo_index):
        with _make_server(demo_index) as server:
            before = server.invoke("bob", "query", "/", spec=Q1_LIST_PATHS)
            assert not any("/proj/shared/" in r[0] for r in before.rows)
            # admin adds bob to the project group: next query must see
            # the group area even though a warm session existed
            server.identity.set_groups("bob", frozenset({100}))
            after = server.invoke("bob", "query", "/", spec=Q1_LIST_PATHS)
            assert any("/proj/shared/" in r[0] for r in after.rows)

    def test_lru_eviction_closes_sessions(self, demo_index):
        with _make_server(demo_index) as server:
            server.SESSION_CACHE_SIZE = 1
            server.invoke("alice", "query", "/", spec=Q1_LIST_PATHS)
            alice_tools = server._sessions[(ALICE.uid, ALICE.gid, ALICE.groups)]
            server.invoke("bob", "query", "/", spec=Q1_LIST_PATHS)
            assert len(server._sessions) == 1
            with pytest.raises(RuntimeError):
                alice_tools.query.run(Q1_LIST_PATHS)
