"""Tests for the parallel query engine: permission gating, the four
paper queries, aggregation plumbing (I/S/E/J/G), SQL helper functions,
T-pruning, tracing, and error paths."""

from __future__ import annotations

import pytest

from repro.core.query import (
    GUFIQuery,
    Q1_LIST_NAMES,
    Q1_LIST_PATHS,
    Q2_DIR_SIZES,
    Q3_DU_SUMMARIES,
    Q4_DU_TSUMMARY,
    QueryPermissionError,
    QuerySpec,
)
from repro.core.tsummary import build_tsummary
from repro.fs.permissions import Credentials
from repro.sim.blktrace import IOTracer
from tests.conftest import ALICE, BOB, CAROL_IN_PROJ, NTHREADS


def ground_truth_visible(tree, creds):
    """Entries a POSIX-correct metadata search shows ``creds``: the
    entries of every directory that is readable and whose ancestors
    (and itself) are searchable."""
    out = []
    stack = ["/"]
    while stack:
        d = stack.pop()
        ino = tree.get_inode(d)
        from repro.fs.permissions import can_read_dir, can_search_dir

        if not can_search_dir(ino.mode, ino.uid, ino.gid, creds):
            continue
        if not can_read_dir(ino.mode, ino.uid, ino.gid, creds):
            continue
        for e in tree.readdir(d):
            child = f"{d.rstrip('/')}/{e.name}"
            if e.ftype.value == "d":
                stack.append(child)
            else:
                out.append(child)
    return sorted(out)


class TestRootQueries:
    def test_q1_lists_everything(self, demo_tree, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        result = q.run(Q1_LIST_PATHS)
        assert sorted(r[0] for r in result.rows) == ground_truth_visible(
            demo_tree, Credentials(uid=0, gid=0)
        )

    def test_q2_all_dirs(self, demo_tree, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        result = q.run(Q2_DIR_SIZES)
        assert len(result.rows) == demo_tree.num_dirs
        paths = sorted(r[0] for r in result.rows)
        assert "/home/alice" in paths and "/" in paths

    def test_q3_total_size(self, demo_tree, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        result = q.run(Q3_DU_SUMMARIES)
        expected = sum(
            i.size for _, i in demo_tree.iter_inodes()
            if i.ftype.value != "d"
        )
        assert result.rows[-1][0] == pytest.approx(expected)

    def test_q4_single_db(self, demo_index):
        build_tsummary(demo_index, "/")
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        result = q.run(Q4_DU_TSUMMARY)
        assert result.dirs_visited == 1
        assert result.rows

    def test_q4_equals_q3(self, demo_index):
        build_tsummary(demo_index, "/")
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        r3 = q.run(Q3_DU_SUMMARIES)
        r4 = q.run(Q4_DU_TSUMMARY)
        assert r4.rows[0][0] == pytest.approx(r3.rows[-1][0])


class TestPermissionGating:
    def test_user_sees_only_accessible(self, demo_tree, demo_index):
        for creds in (ALICE, BOB, CAROL_IN_PROJ):
            q = GUFIQuery(demo_index, creds=creds, nthreads=NTHREADS)
            got = sorted(r[0] for r in q.run(Q1_LIST_PATHS).rows)
            assert got == ground_truth_visible(demo_tree, creds), creds

    def test_alice_blocked_from_bob_secret(self, demo_index):
        q = GUFIQuery(demo_index, creds=ALICE, nthreads=NTHREADS)
        rows = [r[0] for r in q.run(Q1_LIST_PATHS).rows]
        assert "/home/bob/b.txt" in rows  # bob's home is world-readable
        assert not any("secret" in r for r in rows)

    def test_group_access(self, demo_index):
        q = GUFIQuery(demo_index, creds=CAROL_IN_PROJ, nthreads=NTHREADS)
        rows = [r[0] for r in q.run(Q1_LIST_PATHS).rows]
        assert "/proj/shared/p.c" in rows
        assert "/proj/shared/data/d.h5" in rows
        assert not any(r.startswith("/home/alice") for r in rows)

    def test_xonly_dir_not_listed(self, demo_index):
        q = GUFIQuery(demo_index, creds=BOB, nthreads=NTHREADS)
        rows = [r[0] for r in q.run(Q1_LIST_PATHS).rows]
        assert not any("hidden" in r for r in rows)

    def test_denied_counted(self, demo_index):
        q = GUFIQuery(demo_index, creds=BOB, nthreads=NTHREADS)
        result = q.run(Q1_LIST_PATHS)
        assert result.dirs_denied >= 2  # alice home, ronly/xonly...

    def test_start_inside_denied_tree_raises(self, demo_index):
        q = GUFIQuery(demo_index, creds=BOB, nthreads=NTHREADS)
        with pytest.raises(QueryPermissionError):
            q.run(Q1_LIST_PATHS, start="/home/alice/sub")

    def test_start_below_xonly_allowed_for_searchers(self, demo_index):
        # /public/xonly is 0711: bob may use it as a path component,
        # and the root itself must then be readable... it isn't a dir
        # with a db below, so query the xonly dir itself: r missing ->
        # denied to process.
        q = GUFIQuery(demo_index, creds=BOB, nthreads=NTHREADS)
        result = q.run(Q1_LIST_PATHS, start="/public/xonly")
        assert result.rows == []
        assert result.dirs_denied == 1

    def test_missing_start_raises(self, demo_index):
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        with pytest.raises(FileNotFoundError):
            q.run(Q1_LIST_NAMES, start="/nope")

    def test_user_cost_proportional(self, demo_index):
        root_visited = GUFIQuery(demo_index, nthreads=NTHREADS).run(
            Q1_LIST_NAMES
        ).dirs_visited
        bob_visited = GUFIQuery(demo_index, creds=BOB, nthreads=NTHREADS).run(
            Q1_LIST_NAMES
        ).dirs_visited
        assert bob_visited < root_visited


class TestAggregation:
    def test_i_j_g_pipeline(self, demo_index):
        spec = QuerySpec(
            I="CREATE TABLE counts (n INTEGER)",
            E="INSERT INTO counts SELECT COUNT(*) FROM pentries",
            J="INSERT INTO aggregate.counts SELECT TOTAL(n) FROM counts",
            G="SELECT TOTAL(n) FROM counts",
        )
        result = GUFIQuery(demo_index, nthreads=NTHREADS).run(spec)
        total = GUFIQuery(demo_index, nthreads=NTHREADS).run(Q1_LIST_NAMES)
        assert result.rows[-1][0] == len(total.rows)

    def test_group_by_merge(self, demo_index):
        spec = QuerySpec(
            I="CREATE TABLE usage (uid INTEGER, bytes INTEGER)",
            E="INSERT INTO usage SELECT uid, TOTAL(size) FROM pentries GROUP BY uid",
            J="INSERT INTO aggregate.usage SELECT uid, TOTAL(bytes) FROM usage GROUP BY uid",
            G="SELECT uid, TOTAL(bytes) FROM usage GROUP BY uid ORDER BY uid",
        )
        result = GUFIQuery(demo_index, nthreads=NTHREADS).run(spec)
        by_uid = {int(u): b for u, b in result.rows}
        assert by_uid[1001] == 100 + 250 + 700  # alice's files
        assert by_uid[1002] == 300 + 50

    def test_g_without_j(self, demo_index):
        # G alone runs against an (empty) aggregate built from I
        spec = QuerySpec(
            I="CREATE TABLE t (x INTEGER)",
            G="SELECT COUNT(*) FROM t",
        )
        result = GUFIQuery(demo_index, nthreads=NTHREADS).run(spec)
        assert result.rows[-1] == (0,)


class TestSqlFuncs:
    def test_path_function(self, demo_index):
        spec = QuerySpec(S="SELECT path(), level() FROM summary")
        rows = GUFIQuery(demo_index, nthreads=NTHREADS).run(spec, "/home").rows
        paths = {r[0]: r[1] for r in rows}
        assert paths["/home"] == 1
        assert paths["/home/alice"] == 2

    def test_uidtouser(self, demo_index):
        q = GUFIQuery(
            demo_index, nthreads=NTHREADS, users={1001: "alice"}
        )
        spec = QuerySpec(E="SELECT uidtouser(uid) FROM pentries")
        rows = q.run(spec, "/home/alice").rows
        assert ("alice",) in rows

    def test_basename(self, demo_index):
        spec = QuerySpec(S="SELECT basename(path()) FROM summary")
        rows = GUFIQuery(demo_index, nthreads=NTHREADS).run(spec, "/home/bob").rows
        assert ("bob",) in rows

    def test_rpath_at_root(self, demo_index):
        spec = QuerySpec(E="SELECT rpath(dname, d_isroot, name) FROM vrpentries")
        rows = GUFIQuery(demo_index, nthreads=NTHREADS).run(spec, "/").rows
        assert all(r[0].startswith("/") and "//" not in r[0] for r in rows)


class TestTPruning:
    def test_t_prunes_descent(self, demo_index):
        build_tsummary(demo_index, "/home")
        spec = QuerySpec(
            T="SELECT totfiles FROM tsummary WHERE rectype = 0",
            E="SELECT name FROM pentries",
        )
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        result = q.run(spec, "/home")
        assert result.dirs_visited == 1
        # tsummary row only; no entry rows from below
        assert len(result.rows) == 1

    def test_t_no_prune(self, demo_index):
        build_tsummary(demo_index, "/home")
        spec = QuerySpec(
            T="SELECT totfiles FROM tsummary WHERE rectype = 0",
            t_no_prune=True,
        )
        result = GUFIQuery(demo_index, nthreads=NTHREADS).run(spec, "/home")
        assert result.dirs_visited > 1

    def test_t_descends_when_absent(self, demo_index):
        spec = QuerySpec(T="SELECT totfiles FROM tsummary")
        result = GUFIQuery(demo_index, nthreads=NTHREADS).run(spec, "/home")
        assert result.dirs_visited > 1
        assert result.rows == []


class TestTracing:
    def test_tracer_counts_permitted_only(self, demo_index):
        tr_root = IOTracer()
        GUFIQuery(demo_index, nthreads=NTHREADS, tracer=tr_root).run(Q1_LIST_NAMES)
        tr_bob = IOTracer()
        GUFIQuery(
            demo_index, creds=BOB, nthreads=NTHREADS, tracer=tr_bob
        ).run(Q1_LIST_NAMES)
        assert tr_bob.num_reads < tr_root.num_reads
        assert tr_bob.total_bytes < tr_root.total_bytes


class TestRunSingle:
    def test_single_dir(self, demo_index):
        spec = QuerySpec(E="SELECT name FROM entries ORDER BY name")
        result = GUFIQuery(demo_index, nthreads=NTHREADS).run_single(
            spec, "/home/bob"
        )
        assert [r[0] for r in result.rows] == ["b.txt"]
        assert result.dirs_visited == 1

    def test_single_denied(self, demo_index):
        with pytest.raises(QueryPermissionError):
            GUFIQuery(demo_index, creds=BOB, nthreads=NTHREADS).run_single(
                QuerySpec(E="SELECT name FROM entries"), "/home/alice"
            )

    def test_bad_sql_raises(self, demo_index):
        import sqlite3

        with pytest.raises(sqlite3.OperationalError):
            GUFIQuery(demo_index, nthreads=NTHREADS).run_single(
                QuerySpec(E="SELECT nonsense FROM nowhere"), "/"
            )

    def test_bad_sql_in_run_raises(self, demo_index):
        with pytest.raises(RuntimeError):
            GUFIQuery(demo_index, nthreads=NTHREADS).run(
                QuerySpec(E="SELECT nonsense FROM nowhere")
            )
