"""Crash-safe resumable builds: the acceptance suite.

The contract under test (ISSUE tentpole): a seeded fault plan that
kills the build at 25%/50%/75% of directories, followed by a
``resume=True`` run, yields query results identical to an
uninterrupted build — deterministically — and leaves no ``.partial``
staging files or journal behind.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import db as dbmod
from repro.core.build import (
    PARTIAL_SUFFIX,
    BuildOptions,
    build_from_stanzas,
    dir2index,
)
from repro.core.checkpoint import JOURNAL_NAME, BuildJournal
from repro.core.index import GUFIIndex
from repro.core.query import Q1_LIST_PATHS, GUFIQuery
from repro.gen.datasets import dataset2
from repro.scan.faults import BuildCrash, FaultPlan, InjectedFault
from repro.scan.scanners import TreeWalkScanner
from repro.scan.walker import RetryPolicy
from tests.conftest import NTHREADS, build_demo_tree


def query_rows(index) -> list:
    """Sorted full-tree path listing — the identity oracle."""
    return sorted(GUFIQuery(index, nthreads=NTHREADS).run(Q1_LIST_PATHS).rows)


def partials_under(root) -> list[str]:
    return [
        os.path.join(d, f)
        for d, _, files in os.walk(root)
        for f in files
        if f.endswith(PARTIAL_SUFFIX)
    ]


def demo_stanzas():
    return TreeWalkScanner(build_demo_tree(), nthreads=1).scan("/").stanzas


class TestCrashResumeAcceptance:
    """The headline guarantee, from trace-shaped stanzas."""

    @pytest.mark.parametrize("frac", [0.25, 0.5, 0.75])
    def test_kill_and_resume_identical(self, tmp_path, frac):
        stanzas = demo_stanzas()
        baseline = build_from_stanzas(
            stanzas, tmp_path / "full", BuildOptions(nthreads=NTHREADS)
        )
        want = query_rows(baseline.index)

        kill_at = max(1, int(len(stanzas) * frac))
        root = tmp_path / "killed"
        with pytest.raises(BuildCrash):
            build_from_stanzas(
                stanzas, root,
                BuildOptions(
                    nthreads=NTHREADS,
                    faults=FaultPlan.crash_at("build_dir_db", kill_at),
                ),
            )
        # the crash left a journal behind (that is the resume signal)
        assert (root / JOURNAL_NAME).exists()

        resumed = build_from_stanzas(
            stanzas, root, BuildOptions(nthreads=NTHREADS, resume=True)
        )
        assert resumed.ok
        assert query_rows(resumed.index) == want
        # every stanza is accounted for: skipped (journaled) + rebuilt
        assert resumed.dirs_skipped + resumed.dirs_created == len(stanzas)
        assert resumed.dirs_skipped >= kill_at - 1
        # clean finish: no staging residue, no journal
        assert partials_under(root) == []
        assert not (root / JOURNAL_NAME).exists()

    def test_crash_point_deterministic_across_runs(self, tmp_path):
        """Two runs with the same seeded plan die at the same
        invocation and resume to the same result."""
        stanzas = demo_stanzas()
        fired = []
        rows = []
        for run in ("a", "b"):
            root = tmp_path / run
            plan = FaultPlan.crash_at("build_dir_db", 6)
            with pytest.raises(BuildCrash):
                build_from_stanzas(
                    stanzas, root, BuildOptions(nthreads=NTHREADS, faults=plan)
                )
            fired.append([(f.site, f.invocation) for f in plan.fired])
            resumed = build_from_stanzas(
                stanzas, root, BuildOptions(nthreads=NTHREADS, resume=True)
            )
            rows.append(query_rows(resumed.index))
        assert fired[0] == fired[1] == [("build_dir_db", 6)]
        assert rows[0] == rows[1]

    def test_crash_at_commit_point_publishes_nothing(self, tmp_path):
        """The worst crash point — all temp files written, renames not
        yet performed — leaves no visible db.db for that directory."""
        stanzas = demo_stanzas()
        root = tmp_path / "idx"
        plan = FaultPlan.crash_at("build_dir_db.commit", 3)
        # single-threaded so "exactly 2 commits completed" is exact:
        # in-flight work on other threads is allowed to finish
        with pytest.raises(BuildCrash):
            build_from_stanzas(
                stanzas, root, BuildOptions(nthreads=1, faults=plan)
            )
        # exactly the commits that ran to completion are visible
        visible = sum(
            1 for d, _, files in os.walk(root) if "db.db" in files
        )
        assert visible == 2  # commit #3 died before its rename
        resumed = build_from_stanzas(
            stanzas, root, BuildOptions(nthreads=NTHREADS, resume=True)
        )
        assert resumed.dirs_skipped == 2
        assert resumed.dirs_created == len(stanzas) - 2
        assert partials_under(root) == []

    def test_dir2index_crash_and_resume(self, tmp_path):
        """Same guarantee on the in-situ scan path."""
        tree = build_demo_tree()
        full = dir2index(
            tree, tmp_path / "full", opts=BuildOptions(nthreads=NTHREADS)
        )
        want = query_rows(full.index)
        root = tmp_path / "killed"
        with pytest.raises(BuildCrash):
            dir2index(
                tree, root,
                opts=BuildOptions(
                    nthreads=NTHREADS,
                    faults=FaultPlan.crash_at("build_dir_db", 5),
                ),
            )
        resumed = dir2index(
            tree, root, opts=BuildOptions(nthreads=NTHREADS, resume=True)
        )
        assert resumed.ok
        # at least the 4 dirs published before the 5th entry crashed
        # are skipped (threads may have finished in-flight extras)
        assert resumed.dirs_skipped >= 4
        assert resumed.dirs_skipped + resumed.dirs_created == tree.num_dirs
        assert query_rows(resumed.index) == want
        assert partials_under(root) == []
        assert not (root / JOURNAL_NAME).exists()

    def test_resume_on_fresh_root_builds_everything(self, tmp_path):
        """resume=True with no journal is just a normal build."""
        stanzas = demo_stanzas()
        result = build_from_stanzas(
            stanzas, tmp_path / "idx", BuildOptions(nthreads=NTHREADS, resume=True)
        )
        assert result.ok
        assert result.dirs_skipped == 0
        assert result.dirs_created == len(stanzas)


class TestStructuredErrorsAndResume:
    def test_permanent_error_then_resume_finishes(self, tmp_path):
        """A directory that exhausts its retries lands in errors; the
        journal survives, and a later resume (fault healed) skips all
        the finished work and completes the index."""
        stanzas = demo_stanzas()
        victim = stanzas[4].directory.path
        root = tmp_path / "idx"
        result = build_from_stanzas(
            stanzas, root,
            BuildOptions(
                nthreads=NTHREADS,
                retry=RetryPolicy(retries=1, sleep=lambda s: None),
                faults=FaultPlan.flaky_paths("build_dir_db", [victim], times=10),
            ),
        )
        assert not result.ok
        assert [p for p, _ in result.errors] == [victim]
        assert isinstance(result.errors[0][1], InjectedFault)
        assert result.dirs_created == len(stanzas) - 1
        assert (root / JOURNAL_NAME).exists()

        resumed = build_from_stanzas(
            stanzas, root, BuildOptions(nthreads=NTHREADS, resume=True)
        )
        assert resumed.ok
        assert resumed.dirs_skipped == len(stanzas) - 1
        assert resumed.dirs_created == 1
        want = query_rows(
            build_from_stanzas(
                stanzas, tmp_path / "full", BuildOptions(nthreads=NTHREADS)
            ).index
        )
        assert query_rows(resumed.index) == want
        assert not (root / JOURNAL_NAME).exists()

    def test_transient_error_retried_in_place(self, tmp_path):
        """A fault that heals within the retry budget never surfaces:
        the build is clean, only the retry counter betrays it."""
        stanzas = demo_stanzas()
        victim = stanzas[2].directory.path
        result = build_from_stanzas(
            stanzas, tmp_path / "idx",
            BuildOptions(
                nthreads=NTHREADS,
                retry=RetryPolicy(retries=2, sleep=lambda s: None),
                faults=FaultPlan.flaky_paths("build_dir_db", [victim], times=2),
            ),
        )
        assert result.ok
        assert result.dirs_retried == 2
        assert result.dirs_created == len(stanzas)


class TestXattrShardFault:
    """Satellite: a failure while writing xattr side databases must not
    publish a half-committed directory (db.db renames last)."""

    def _xattr_tree(self):
        """Demo tree with xattrs that *must* shard into side databases:
        values on files whose owner/group differ from the parent
        directory (placement rules 3 and 4, not rule-2 main rows)."""
        t = build_demo_tree()
        # /proj/shared/data is owned by 1001; d.h5 by 1003 -> per-user db
        t.setxattr("/proj/shared/data/d.h5", "user.tag", b"v1")
        # different owner AND group -> per-user + per-group-readable dbs
        t.create_file("/proj/shared/q.log", size=10, mode=0o640, uid=1002, gid=1002)
        t.setxattr("/proj/shared/q.log", "user.tag", b"v2")
        return t

    def test_shard_fault_leaves_no_visible_db(self, tmp_path):
        tree = self._xattr_tree()
        root = tmp_path / "idx"
        result = dir2index(
            tree, root,
            opts=BuildOptions(
                nthreads=1,
                retry=None,
                faults=FaultPlan.io_at("xattr_shards", 1),
            ),
        )
        assert len(result.errors) == 1
        bad_path, exc = result.errors[0]
        assert isinstance(exc, InjectedFault)
        # the failed directory has NO visible database: neither db.db
        # nor any published side shard — queries see pure absence
        bad_dir = result.index.index_dir(bad_path)
        visible = [
            f for f in os.listdir(bad_dir)
            if not f.endswith(PARTIAL_SUFFIX) and f.endswith(".db")
        ]
        assert visible == []

    def test_shard_fault_resume_completes_identically(self, tmp_path):
        tree = self._xattr_tree()
        full = dir2index(
            tree, tmp_path / "full", opts=BuildOptions(nthreads=NTHREADS)
        )
        want = query_rows(full.index)
        root = tmp_path / "idx"
        dir2index(
            tree, root,
            opts=BuildOptions(
                nthreads=1,
                retry=None,
                faults=FaultPlan.io_at("xattr_shards", 1),
            ),
        )
        resumed = dir2index(
            tree, root, opts=BuildOptions(nthreads=NTHREADS, resume=True)
        )
        assert resumed.ok
        assert query_rows(resumed.index) == want
        assert partials_under(root) == []
        # side databases were published for the xattr-bearing dirs
        assert resumed.side_dbs_created >= 1

    def test_shard_fault_healed_by_retry(self, tmp_path):
        tree = self._xattr_tree()
        result = dir2index(
            tree, tmp_path / "idx",
            opts=BuildOptions(
                nthreads=1,
                retry=RetryPolicy(retries=2, sleep=lambda s: None),
                faults=FaultPlan.io_at("xattr_shards", 1),
            ),
        )
        assert result.ok
        assert result.dirs_retried == 1


class TestJournal:
    def test_truncated_trailing_line_skipped(self, tmp_path):
        j = BuildJournal.open(tmp_path, source="t")
        j.record("/a", (1, 2, 3), 5, 0)
        j.record("/b", (4, 5, 6), 7, 1)
        j.close()
        # simulate a crash landing mid-append
        with open(tmp_path / JOURNAL_NAME, "a", encoding="utf-8") as fh:
            fh.write('{"path": "/c", "stamp": [9')
        loaded = BuildJournal.load(tmp_path)
        assert set(loaded) == {"/a", "/b"}
        assert loaded["/a"].stamp == (1, 2, 3)
        assert loaded["/b"].side_dbs == 1

    def test_later_records_win(self, tmp_path):
        j = BuildJournal.open(tmp_path, source="t")
        j.record("/a", (1, 1, 1), 1, 0)
        j.record("/a", (2, 2, 2), 9, 0)
        j.close()
        assert BuildJournal.load(tmp_path)["/a"].stamp == (2, 2, 2)

    def test_is_complete_requires_matching_stamp(self, tmp_path):
        db = tmp_path / "db.db"
        db.write_bytes(b"x" * 64)
        j = BuildJournal.open(tmp_path, source="t")
        j.record("/a", dbmod.file_stamp(db), 1, 0)
        assert j.is_complete("/a", db)
        assert not j.is_complete("/missing", db)
        db.write_bytes(b"y" * 128)  # rewritten out-of-band
        assert not j.is_complete("/a", db)
        j.close()

    def test_fresh_build_truncates_stale_journal(self, tmp_path):
        j = BuildJournal.open(tmp_path, source="old")
        j.record("/stale", (1, 1, 1), 1, 0)
        j.close()
        j2 = BuildJournal.open(tmp_path, resume=False, source="new")
        j2.close()
        assert BuildJournal.load(tmp_path) == {}

    def test_resume_rebuilds_tampered_database(self, tmp_path):
        """A journaled directory whose db.db was rewritten out-of-band
        fails stamp validation and is rebuilt on resume."""
        stanzas = demo_stanzas()
        root = tmp_path / "idx"
        with pytest.raises(BuildCrash):
            build_from_stanzas(
                stanzas, root,
                BuildOptions(
                    nthreads=NTHREADS,
                    faults=FaultPlan.crash_at("build_dir_db", 8),
                ),
            )
        journaled = list(BuildJournal.load(root))
        victim = journaled[0]
        victim_db = GUFIIndex.open(root).db_path(victim)
        victim_db.write_bytes(b"corrupted")
        resumed = build_from_stanzas(
            stanzas, root, BuildOptions(nthreads=NTHREADS, resume=True)
        )
        assert resumed.ok
        assert resumed.dirs_skipped == len(journaled) - 1
        want = query_rows(
            build_from_stanzas(
                stanzas, tmp_path / "full", BuildOptions(nthreads=NTHREADS)
            ).index
        )
        assert query_rows(resumed.index) == want


class TestCrashResumeProperty:
    """Satellite: for random namespaces and a random (seeded) crash
    point, crash + resume is indistinguishable from never crashing."""

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_resume_identical_to_uninterrupted(self, seed):
        rng = random.Random(seed)
        ns = dataset2(scale=0.00003, seed=seed)
        stanzas = TreeWalkScanner(ns.tree, nthreads=1).scan("/").stanzas
        kill_at = rng.randint(1, len(stanzas))
        base = tempfile.mkdtemp(prefix="resume_prop_")
        try:
            baseline = build_from_stanzas(
                stanzas, f"{base}/full", BuildOptions(nthreads=NTHREADS)
            )
            want = query_rows(baseline.index)
            root = f"{base}/killed"
            with pytest.raises(BuildCrash):
                build_from_stanzas(
                    stanzas, root,
                    BuildOptions(
                        nthreads=NTHREADS,
                        faults=FaultPlan.crash_at("build_dir_db", kill_at),
                    ),
                )
            resumed = build_from_stanzas(
                stanzas, root, BuildOptions(nthreads=NTHREADS, resume=True)
            )
            assert resumed.ok
            assert query_rows(resumed.index) == want
            assert resumed.dirs_skipped + resumed.dirs_created == len(stanzas)
            assert partials_under(root) == []
            assert not os.path.exists(os.path.join(root, JOURNAL_NAME))
        finally:
            shutil.rmtree(base, ignore_errors=True)
