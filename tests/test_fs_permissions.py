"""Unit tests for the POSIX permission evaluator — the security
foundation everything else (engine gating, xattr sharding, rollup
conditions) builds on."""

from __future__ import annotations

import pytest

from repro.fs.permissions import (
    EXECUTE,
    READ,
    ROOT,
    WRITE,
    Credentials,
    can_read_dir,
    can_read_entry,
    can_search_dir,
    can_write_entry,
    check_access,
    format_mode,
    mode_bits_for,
)

ALICE = Credentials(uid=1001, gid=1001)
BOB_IN_G100 = Credentials(uid=1002, gid=1002, groups=frozenset({100}))
OTHER = Credentials(uid=1999, gid=1999)


class TestCredentials:
    def test_primary_gid_always_member(self):
        c = Credentials(uid=5, gid=7)
        assert c.in_group(7)

    def test_supplementary_groups(self):
        c = Credentials(uid=5, gid=7, groups=frozenset({9, 11}))
        assert c.in_group(9) and c.in_group(11) and c.in_group(7)
        assert not c.in_group(8)

    def test_root_flag(self):
        assert ROOT.is_root
        assert not ALICE.is_root

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ALICE.uid = 0  # type: ignore[misc]


class TestModeBits:
    def test_owner_class_selected(self):
        assert mode_bits_for(0o754, 1001, 1001, ALICE) == 0o7

    def test_group_class_selected(self):
        assert mode_bits_for(0o754, 1001, 100, BOB_IN_G100) == 0o5

    def test_other_class_selected(self):
        assert mode_bits_for(0o754, 1001, 100, OTHER) == 0o4

    def test_no_fallthrough_owner_denied(self):
        # Owner denied read does NOT inherit permissive other bits.
        assert mode_bits_for(0o077, 1001, 1001, ALICE) == 0
        assert mode_bits_for(0o077, 1001, 100, OTHER) == 0o7

    def test_no_fallthrough_group_denied(self):
        assert mode_bits_for(0o707, 1001, 100, BOB_IN_G100) == 0


class TestAccessChecks:
    @pytest.mark.parametrize(
        "mode,creds,want,expect",
        [
            (0o700, ALICE, READ | WRITE | EXECUTE, True),
            (0o700, OTHER, READ, False),
            (0o750, BOB_IN_G100, READ | EXECUTE, True),
            (0o750, BOB_IN_G100, WRITE, False),
            (0o755, OTHER, READ | EXECUTE, True),
            (0o755, OTHER, WRITE, False),
        ],
    )
    def test_check_access_matrix(self, mode, creds, want, expect):
        assert check_access(mode, 1001, 100, creds, want) is expect

    def test_root_bypasses_rw(self):
        assert check_access(0o000, 1001, 1001, ROOT, READ | WRITE)

    def test_search_dir(self):
        assert can_search_dir(0o711, 0, 0, OTHER)
        assert not can_read_dir(0o711, 0, 0, OTHER)

    def test_read_dir_without_search(self):
        assert can_read_dir(0o644, 0, 0, OTHER)
        assert not can_search_dir(0o644, 0, 0, OTHER)

    def test_root_always_searches(self):
        assert can_search_dir(0o000, 1001, 1001, ROOT)
        assert can_read_dir(0o000, 1001, 1001, ROOT)

    def test_entry_read_write(self):
        assert can_read_entry(0o640, 1001, 100, BOB_IN_G100)
        assert not can_write_entry(0o640, 1001, 100, BOB_IN_G100)
        assert can_write_entry(0o640, 1001, 100, ALICE)


class TestFormatMode:
    @pytest.mark.parametrize(
        "ftype,mode,expect",
        [
            ("d", 0o755, "drwxr-xr-x"),
            ("f", 0o644, "-rw-r--r--"),
            ("l", 0o777, "lrwxrwxrwx"),
            ("f", 0o000, "----------"),
            ("d", 0o711, "drwx--x--x"),
        ],
    )
    def test_strings(self, ftype, mode, expect):
        assert format_mode(ftype, mode) == expect
