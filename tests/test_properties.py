"""Property-based tests (hypothesis) for the system's core invariants.

The central security claim of the paper — a user's query over the
index returns exactly what a POSIX-checked walk of the source file
system would show them, before and after rollup — is checked here on
randomly generated trees with adversarial permission shapes, along
with aggregate-correctness and serialisation round-trips.
"""

from __future__ import annotations

import random as random_mod

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.build import BuildOptions, dir2index
from repro.core.query import GUFIQuery, Q1_LIST_PATHS, QuerySpec
from repro.core.rollup import rollup, unrollup_dir
from repro.core.schema import pack_xattrs, unpack_xattrs
from repro.core.tsummary import build_tsummary
from repro.fs.permissions import (
    Credentials,
    can_read_dir,
    can_read_entry,
    can_search_dir,
    mode_bits_for,
)
from repro.fs.tree import VFSTree
from repro.scan.trace import TraceRecord

UIDS = [1001, 1002, 1003]
GIDS = [1001, 1002, 1003, 100]
DIR_MODES = [0o700, 0o750, 0o755, 0o711, 0o770, 0o600, 0o775]
FILE_MODES = [0o600, 0o640, 0o644, 0o660, 0o664, 0o000]

CREDS = [
    Credentials(uid=0, gid=0),
    Credentials(uid=1001, gid=1001),
    Credentials(uid=1002, gid=1002),
    Credentials(uid=1003, gid=1003, groups=frozenset({100})),
]


@st.composite
def tree_descriptions(draw):
    """A compact random tree: directories with random parents, modes,
    and owners; files with random attributes and optional xattrs."""
    n_dirs = draw(st.integers(min_value=1, max_value=10))
    dirs = []
    for i in range(n_dirs):
        parent = draw(st.integers(min_value=-1, max_value=i - 1))
        dirs.append(
            (
                parent,
                draw(st.sampled_from(DIR_MODES)),
                draw(st.sampled_from(UIDS)),
                draw(st.sampled_from(GIDS)),
            )
        )
    n_files = draw(st.integers(min_value=0, max_value=15))
    files = []
    for _ in range(n_files):
        files.append(
            (
                draw(st.integers(min_value=-1, max_value=n_dirs - 1)),
                draw(st.sampled_from(FILE_MODES)),
                draw(st.sampled_from(UIDS)),
                draw(st.sampled_from(GIDS)),
                draw(st.integers(min_value=0, max_value=10**6)),
                draw(st.booleans()),  # has xattr
            )
        )
    return dirs, files


def materialize(desc) -> VFSTree:
    dirs, files = desc
    tree = VFSTree()
    paths = []
    for i, (parent, mode, uid, gid) in enumerate(dirs):
        base = "/" if parent == -1 else paths[parent]
        path = f"{base.rstrip('/')}/d{i}"
        tree.mkdir(path, mode=mode, uid=uid, gid=gid)
        paths.append(path)
    for j, (parent, mode, uid, gid, size, has_x) in enumerate(files):
        base = "/" if parent == -1 else paths[parent]
        path = f"{base.rstrip('/')}/f{j}"
        tree.create_file(path, size=size, mode=mode, uid=uid, gid=gid)
        if has_x:
            tree.setxattr(path, "user.tag", f"v{j}".encode())
    return tree


def ground_truth_entries(tree: VFSTree, creds: Credentials) -> list[str]:
    """Entries a POSIX-correct search shows: dir reachable via x on all
    ancestors, dir itself r+x."""
    out = []
    stack = ["/"]
    while stack:
        d = stack.pop()
        ino = tree.get_inode(d)
        if not (
            can_search_dir(ino.mode, ino.uid, ino.gid, creds)
            and can_read_dir(ino.mode, ino.uid, ino.gid, creds)
        ):
            continue
        for e in tree.readdir(d):
            child = f"{d.rstrip('/')}/{e.name}"
            if e.ftype.value == "d":
                stack.append(child)
            else:
                out.append(child)
    return sorted(out)


def ground_truth_xattrs(tree: VFSTree, creds: Credentials) -> set[str]:
    """Paths whose xattr *values* the index should reveal to ``creds``
    under the paper's §III-A2 sharding rules."""
    visible = set()
    stack = ["/"]
    while stack:
        d = stack.pop()
        dino = tree.get_inode(d)
        if not (
            can_search_dir(dino.mode, dino.uid, dino.gid, creds)
            and can_read_dir(dino.mode, dino.uid, dino.gid, creds)
        ):
            continue
        for e in tree.readdir(d):
            child = f"{d.rstrip('/')}/{e.name}"
            if e.ftype.value == "d":
                stack.append(child)
                continue
            ino = tree.get_inode(child)
            if not ino.xattrs:
                continue
            matches_parent = (
                ino.uid == dino.uid
                and ino.gid == dino.gid
                and (ino.mode & 0o444) == (dino.mode & 0o444)
            )
            if matches_parent:
                visible.add(child)  # stored in the (readable) main db
            elif creds.is_root or creds.uid == ino.uid:
                visible.add(child)  # per-user side db
            elif (
                ino.gid != dino.gid
                and ino.mode & 0o040
                and creds.in_group(ino.gid)
            ):
                visible.add(child)  # group-readable side db
    return visible


common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestQueryEqualsGroundTruth:
    @common
    @given(desc=tree_descriptions())
    def test_every_user_sees_exactly_posix(self, desc, tmp_path_factory):
        tree = materialize(desc)
        root = tmp_path_factory.mktemp("prop")
        idx = dir2index(tree, root / "i", opts=BuildOptions(nthreads=2)).index
        for creds in CREDS:
            q = GUFIQuery(idx, creds=creds, nthreads=2)
            got = sorted(r[0] for r in q.run(Q1_LIST_PATHS).rows)
            assert got == ground_truth_entries(tree, creds), creds

    @common
    @given(desc=tree_descriptions())
    def test_rollup_preserves_every_view(self, desc, tmp_path_factory):
        tree = materialize(desc)
        root = tmp_path_factory.mktemp("prop")
        idx = dir2index(tree, root / "i", opts=BuildOptions(nthreads=2)).index
        rollup(idx, nthreads=2)
        for creds in CREDS:
            q = GUFIQuery(idx, creds=creds, nthreads=2)
            got = sorted(r[0] for r in q.run(Q1_LIST_PATHS).rows)
            assert got == ground_truth_entries(tree, creds), creds

    @common
    @given(
        desc=tree_descriptions(),
        limit=st.one_of(st.none(), st.integers(min_value=1, max_value=20)),
    )
    def test_rollup_limit_never_changes_results(
        self, desc, limit, tmp_path_factory
    ):
        tree = materialize(desc)
        root = tmp_path_factory.mktemp("prop")
        idx = dir2index(tree, root / "i", opts=BuildOptions(nthreads=2)).index
        q = GUFIQuery(idx, nthreads=2)
        before = sorted(q.run(Q1_LIST_PATHS).rows)
        rollup(idx, limit=limit, nthreads=2)
        assert sorted(q.run(Q1_LIST_PATHS).rows) == before

    @common
    @given(desc=tree_descriptions(), seed=st.integers(0, 2**16))
    def test_unrollup_any_dir_preserves_results(
        self, desc, seed, tmp_path_factory
    ):
        tree = materialize(desc)
        root = tmp_path_factory.mktemp("prop")
        idx = dir2index(tree, root / "i", opts=BuildOptions(nthreads=2)).index
        q = GUFIQuery(idx, nthreads=2)
        before = sorted(q.run(Q1_LIST_PATHS).rows)
        rollup(idx, nthreads=2)
        rolled = [
            idx.source_path(d)
            for d in idx.iter_index_dirs()
            if idx.dir_meta(idx.source_path(d)).rolledup
        ]
        if rolled:
            pick = random_mod.Random(seed).choice(rolled)
            unrollup_dir(idx, pick)
        assert sorted(q.run(Q1_LIST_PATHS).rows) == before


class TestXattrVisibility:
    @common
    @given(desc=tree_descriptions())
    def test_xattr_values_match_sharding_rules(self, desc, tmp_path_factory):
        tree = materialize(desc)
        root = tmp_path_factory.mktemp("prop")
        idx = dir2index(tree, root / "i", opts=BuildOptions(nthreads=2)).index
        spec = QuerySpec(
            E="SELECT rpath(dname, d_isroot, name) FROM xpentries",
            xattrs=True,
        )
        for creds in CREDS:
            q = GUFIQuery(idx, creds=creds, nthreads=2)
            got = {r[0] for r in q.run(spec).rows}
            assert got == ground_truth_xattrs(tree, creds), creds

    @common
    @given(desc=tree_descriptions())
    def test_xattr_visibility_stable_under_rollup(self, desc, tmp_path_factory):
        tree = materialize(desc)
        root = tmp_path_factory.mktemp("prop")
        idx = dir2index(tree, root / "i", opts=BuildOptions(nthreads=2)).index
        spec = QuerySpec(
            E="SELECT rpath(dname, d_isroot, name) FROM xpentries",
            xattrs=True,
        )
        before = {}
        for creds in CREDS:
            q = GUFIQuery(idx, creds=creds, nthreads=2)
            before[creds.uid] = sorted(q.run(spec).rows)
        rollup(idx, nthreads=2)
        for creds in CREDS:
            q = GUFIQuery(idx, creds=creds, nthreads=2)
            assert sorted(q.run(spec).rows) == before[creds.uid], creds


class TestAggregates:
    @common
    @given(desc=tree_descriptions())
    def test_du_equals_brute_force(self, desc, tmp_path_factory):
        tree = materialize(desc)
        root = tmp_path_factory.mktemp("prop")
        idx = dir2index(tree, root / "i", opts=BuildOptions(nthreads=2)).index
        from repro.core.query import Q3_DU_SUMMARIES

        result = GUFIQuery(idx, nthreads=2).run(Q3_DU_SUMMARIES)
        expected = sum(
            i.size for _, i in tree.iter_inodes() if i.ftype.value != "d"
        )
        assert result.rows[-1][0] == pytest.approx(expected)

    @common
    @given(desc=tree_descriptions())
    def test_tsummary_equals_du(self, desc, tmp_path_factory):
        tree = materialize(desc)
        root = tmp_path_factory.mktemp("prop")
        idx = dir2index(tree, root / "i", opts=BuildOptions(nthreads=2)).index
        from repro.core.query import Q3_DU_SUMMARIES, Q4_DU_TSUMMARY

        r3 = GUFIQuery(idx, nthreads=2).run(Q3_DU_SUMMARIES)
        build_tsummary(idx, "/")
        r4 = GUFIQuery(idx, nthreads=2).run(Q4_DU_TSUMMARY)
        assert r4.rows[0][0] == pytest.approx(r3.rows[-1][0])


class TestSerialization:
    @given(
        name=st.text(
            alphabet=st.characters(blacklist_characters="\x1e\x1f\n/",
                                   blacklist_categories=("Cs",)),
            min_size=1, max_size=30,
        ),
        ino=st.integers(min_value=1, max_value=2**48),
        mode=st.integers(min_value=0, max_value=0o7777),
        size=st.integers(min_value=0, max_value=2**50),
        times=st.tuples(*[st.integers(0, 2**32)] * 3),
        xattrs=st.dictionaries(
            st.text(alphabet="abcdefuser.", min_size=1, max_size=12),
            st.binary(max_size=20),
            max_size=4,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_trace_record_roundtrip(self, name, ino, mode, size, times, xattrs):
        rec = TraceRecord(
            path=f"/p/{name}", ftype="f", ino=ino, mode=mode, nlink=1,
            uid=1, gid=2, size=size, blksize=4096, blocks=size // 512,
            atime=times[0], mtime=times[1], ctime=times[2], xattrs=xattrs,
        )
        assert TraceRecord.decode(rec.encode()) == rec

    @given(
        xattrs=st.dictionaries(
            st.text(alphabet="abcdef.", min_size=1, max_size=10),
            st.binary(max_size=16),
            max_size=5,
        )
    )
    @settings(max_examples=200)
    def test_pack_unpack_names_preserved(self, xattrs):
        unpacked = unpack_xattrs(pack_xattrs(xattrs))
        assert set(unpacked) == set(xattrs)


class TestPermissionOracle:
    @given(
        mode=st.integers(min_value=0, max_value=0o777),
        uid=st.sampled_from(UIDS),
        gid=st.sampled_from(GIDS),
        cred=st.sampled_from(CREDS[1:]),  # non-root
    )
    @settings(max_examples=300)
    def test_class_selection(self, mode, uid, gid, cred):
        bits = mode_bits_for(mode, uid, gid, cred)
        if cred.uid == uid:
            assert bits == (mode >> 6) & 7
        elif cred.in_group(gid):
            assert bits == (mode >> 3) & 7
        else:
            assert bits == mode & 7

    @given(
        mode=st.integers(min_value=0, max_value=0o777),
        uid=st.sampled_from(UIDS),
        gid=st.sampled_from(GIDS),
        cred=st.sampled_from(CREDS[1:]),
    )
    @settings(max_examples=300)
    def test_read_entry_consistent_with_bits(self, mode, uid, gid, cred):
        assert can_read_entry(mode, uid, gid, cred) == bool(
            mode_bits_for(mode, uid, gid, cred) & 4
        )
