"""Tests for the index schema helpers and the builders: summary-row
correctness against brute force, dir2index/trace2index equivalence,
per-user/group summary records, and the pentries/vrpentries views."""

from __future__ import annotations

import sqlite3

import pytest

from repro.core import db as dbmod
from repro.core import schema
from repro.core.build import (
    BuildOptions,
    build_from_stanzas,
    dir2index,
    summary_rows,
    trace2index,
)
from repro.core.index import GUFIIndex
from repro.scan.scanners import TreeWalkScanner
from repro.scan.trace import write_trace
from tests.conftest import NTHREADS, build_demo_tree


class TestXattrPacking:
    def test_roundtrip_text(self):
        x = {"user.a": b"hello", "user.b": b"world"}
        packed = schema.pack_xattrs(x)
        assert schema.unpack_xattrs(packed) == {"user.a": "hello", "user.b": "world"}

    def test_binary_hex_encoded(self):
        packed = schema.pack_xattrs({"user.bin": b"\x00\xff"})
        assert schema.unpack_xattrs(packed)["user.bin"] == "0x00ff"

    def test_reserved_chars_forced_to_hex(self):
        packed = schema.pack_xattrs({"user.x": b"a=b"})
        assert "0x" in schema.unpack_xattrs(packed)["user.x"]

    def test_empty(self):
        assert schema.pack_xattrs({}) == ""
        assert schema.unpack_xattrs("") == {}

    def test_names_only(self):
        names = schema.pack_xattr_names({"user.b": b"1", "user.a": b"2"})
        assert names.split("\x1f") == ["user.a", "user.b"]


class TestDbHelpers:
    def test_template_db_has_schema(self, tmp_path):
        conn = dbmod.create_db(tmp_path / "db.db")
        tables = {
            r[0]
            for r in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        views = {
            r[0]
            for r in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='view'"
            )
        }
        conn.close()
        assert {"entries", "summary", "tsummary", "xattrs", "xattrs_avail"} <= tables
        assert {"pentries", "vrpentries"} <= views

    def test_empty_db_size_near_12k(self, tmp_path):
        # the paper's '12KB even when empty' observation
        dbmod.create_db(tmp_path / "db.db").close()
        assert 8 * 1024 <= (tmp_path / "db.db").stat().st_size <= 40 * 1024

    def test_readonly_open_blocks_writes(self, tmp_path):
        dbmod.create_db(tmp_path / "db.db").close()
        ro = dbmod.open_ro(tmp_path / "db.db")
        with pytest.raises(sqlite3.OperationalError):
            ro.execute("INSERT INTO entries (name) VALUES ('x')")
        ro.close()

    def test_tracer_records_open(self, tmp_path):
        from repro.sim.blktrace import IOTracer

        dbmod.create_db(tmp_path / "db.db").close()
        tr = IOTracer()
        dbmod.open_ro(tmp_path / "db.db", tr).close()
        assert tr.num_reads == 1
        assert tr.total_bytes == (tmp_path / "db.db").stat().st_size


class TestSummaryRows:
    def test_aggregates_match_brute_force(self):
        tree = build_demo_tree()
        stanzas = TreeWalkScanner(tree, nthreads=1).scan("/").stanzas
        for stanza in stanzas:
            (row,) = summary_rows(stanza, depth=1, per_user_group=False)
            cols = dict(zip(schema.SUMMARY_COLUMNS, row))
            files = [e for e in stanza.entries if e.ftype == "f"]
            links = [e for e in stanza.entries if e.ftype == "l"]
            assert cols["totfiles"] == len(files)
            assert cols["totlinks"] == len(links)
            assert cols["totsize"] == sum(e.size for e in stanza.entries)
            if files:
                assert cols["minsize"] == min(e.size for e in files)
                assert cols["maxsize"] == max(e.size for e in files)
            assert cols["rolledup"] == 0
            assert cols["mode"] == stanza.directory.mode
            assert cols["uid"] == stanza.directory.uid

    def test_per_user_group_rows(self):
        tree = build_demo_tree()
        stanzas = TreeWalkScanner(tree, nthreads=1).scan("/").stanzas
        shared = next(s for s in stanzas if s.directory.path == "/proj/shared")
        rows = summary_rows(shared, depth=2, per_user_group=True)
        rectypes = [dict(zip(schema.SUMMARY_COLUMNS, r))["rectype"] for r in rows]
        assert rectypes.count(schema.RECTYPE_OVERALL) == 1
        assert schema.RECTYPE_USER in rectypes
        assert schema.RECTYPE_GROUP in rectypes
        # the per-user row for alice counts only her entries
        urow = next(
            dict(zip(schema.SUMMARY_COLUMNS, r))
            for r in rows
            if r[1] == schema.RECTYPE_USER and r[6] == 1001
        )
        assert urow["totfiles"] == 1

    def test_summary_name_pinned_by_rectype(self):
        """Regression: the summary ``name`` must be the directory's own
        basename for the overall record (rollup and rpath key on it)
        and the principal slice — ``u<uid>`` / ``g<gid>`` — for
        per-user/per-group records. A dead ternary once made every
        record claim the directory basename."""
        tree = build_demo_tree()
        stanzas = TreeWalkScanner(tree, nthreads=1).scan("/").stanzas
        shared = next(s for s in stanzas if s.directory.path == "/proj/shared")
        rows = summary_rows(shared, depth=2, per_user_group=True)
        names = {}
        for r in rows:
            cols = dict(zip(schema.SUMMARY_COLUMNS, r))
            names.setdefault(cols["rectype"], []).append(
                (cols["name"], cols["uid"], cols["gid"])
            )
        assert names[schema.RECTYPE_OVERALL] == [
            ("shared", shared.directory.uid, shared.directory.gid)
        ]
        for name, uid, _ in names[schema.RECTYPE_USER]:
            assert name == f"u{uid}"
        for name, _, gid in names[schema.RECTYPE_GROUP]:
            assert name == f"g{gid}"

    def test_subdir_count_from_nlink(self):
        tree = build_demo_tree()
        stanzas = TreeWalkScanner(tree, nthreads=1).scan("/").stanzas
        home = next(s for s in stanzas if s.directory.path == "/home")
        (row,) = summary_rows(home, depth=1, per_user_group=False)
        cols = dict(zip(schema.SUMMARY_COLUMNS, row))
        assert cols["totsubdirs"] == 2  # alice, bob


class TestBuilders:
    def test_dir2index_complete(self, tmp_path):
        tree = build_demo_tree()
        result = dir2index(tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS))
        assert result.dirs_created == tree.num_dirs
        assert result.entries_inserted == tree.num_files + tree.num_symlinks
        assert result.index.count_dbs() == tree.num_dirs
        assert result.index.total_entries() == result.entries_inserted

    def test_trace2index_equivalent(self, tmp_path):
        tree = build_demo_tree()
        stanzas = TreeWalkScanner(tree, nthreads=1).scan("/").stanzas
        write_trace(stanzas, tmp_path / "t.trace")
        r1 = dir2index(tree, tmp_path / "a", opts=BuildOptions(nthreads=NTHREADS))
        r2 = trace2index(
            tmp_path / "t.trace", tmp_path / "b", BuildOptions(nthreads=NTHREADS)
        )
        assert r1.entries_inserted == r2.entries_inserted
        dirs_a = sorted(r1.index.source_path(d) for d in r1.index.iter_index_dirs())
        dirs_b = sorted(r2.index.source_path(d) for d in r2.index.iter_index_dirs())
        assert dirs_a == dirs_b
        # spot-check one directory's rows match
        for sp in ("/home/alice", "/proj/shared"):
            ca = dbmod.open_ro(r1.index.db_path(sp))
            cb = dbmod.open_ro(r2.index.db_path(sp))
            ra = ca.execute("SELECT * FROM entries ORDER BY name").fetchall()
            rb = cb.execute("SELECT * FROM entries ORDER BY name").fetchall()
            ca.close(); cb.close()
            assert ra == rb

    def test_build_preserves_dir_metadata(self, tmp_path):
        tree = build_demo_tree()
        result = dir2index(tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS))
        meta = result.index.dir_meta("/home/alice")
        assert meta.mode == 0o700
        assert meta.uid == 1001
        assert not meta.rolledup

    def test_pentries_view_joins_parent_inode(self, tmp_path):
        tree = build_demo_tree()
        result = dir2index(tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS))
        idx = result.index
        conn = dbmod.open_ro(idx.db_path("/home/alice"))
        dir_ino = idx.dir_meta("/home/alice").inode
        rows = conn.execute("SELECT name, pinode FROM pentries").fetchall()
        conn.close()
        assert rows and all(p == dir_ino for _, p in rows)

    def test_vrpentries_dname(self, tmp_path):
        tree = build_demo_tree()
        result = dir2index(tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS))
        conn = dbmod.open_ro(result.index.db_path("/home/bob"))
        rows = conn.execute(
            "SELECT name, dname, d_isroot FROM vrpentries"
        ).fetchall()
        conn.close()
        assert ("b.txt", "bob", 1) in rows

    def test_index_meta_file(self, tmp_path):
        tree = build_demo_tree()
        result = dir2index(
            tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS),
            source_name="demo",
        )
        reopened = GUFIIndex.open(tmp_path / "idx")
        assert reopened.meta["source"] == "demo"

    def test_open_rejects_non_index(self, tmp_path):
        from repro.core.index import IndexError_

        with pytest.raises(IndexError_):
            GUFIIndex.open(tmp_path)

    def test_build_from_stanzas_reports_structured_errors(self, tmp_path):
        """A bad directory no longer aborts the build: it lands in
        BuildResult.errors while every other directory is published."""
        tree = build_demo_tree()
        stanzas = TreeWalkScanner(tree, nthreads=1).scan("/").stanzas
        # corrupt a stanza to force a failure
        stanzas[3].entries.append("not a record")  # type: ignore[arg-type]
        result = build_from_stanzas(
            stanzas, tmp_path / "bad", BuildOptions(nthreads=NTHREADS)
        )
        assert not result.ok
        assert len(result.errors) == 1
        bad_path, exc = result.errors[0]
        assert bad_path == stanzas[3].directory.path
        assert isinstance(exc, Exception)
        # partial progress: everything else was published
        assert result.dirs_created == len(stanzas) - 1
        # the journal survives for a future resume=True run
        assert (tmp_path / "bad" / "gufi_build.journal").exists()
