"""Concurrent-server stress: many threads hammering one GUFIServer.

The server's contract under concurrency: every invocation — success or
failure — lands exactly one well-formed audit entry; the bounded audit
log never loses count of what it evicted; and the observability
counters agree with the audit log. The per-credential session cache is
shared across threads, so these runs also exercise the warm-session
path under contention.
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.core.server import (
    AuthenticationError,
    GUFIServer,
    IdentityProvider,
    ToolNotAllowed,
)
from tests.conftest import NTHREADS

STRESS_THREADS = 8
INVOKES_PER_THREAD = 12


@pytest.fixture
def identity():
    idp = IdentityProvider()
    idp.add_user("alice", uid=1001, gid=1001)
    idp.add_user("bob", uid=1002, gid=1002)
    idp.add_user("carol", uid=1003, gid=1003, groups=frozenset({100}))
    idp.add_user("root", uid=0, gid=0)
    idp.add_user("mallory", uid=1999, gid=1999, enabled=False)
    return idp


@pytest.fixture
def server(demo_index, identity):
    with GUFIServer(demo_index, identity, nthreads=NTHREADS) as srv:
        yield srv


def _hammer(server, thread_no: int, outcomes: list) -> None:
    """One stress thread: a fixed script of good and bad invocations.

    Each iteration issues one ``du`` that must succeed, plus one
    invocation that must fail — alternating between an off-whitelist
    tool and a disabled user — so success and failure paths interleave
    under contention.
    """
    users = ("alice", "bob", "carol", "root")
    ok = failed = 0
    for i in range(INVOKES_PER_THREAD):
        user = users[(thread_no + i) % len(users)]
        assert server.invoke(user, "du", "/") >= 0
        ok += 1
        try:
            if i % 2:
                server.invoke(user, "chmod", "/")
            else:
                server.invoke("mallory", "du", "/")
            raise AssertionError("expected the invocation to fail")
        except (ToolNotAllowed, AuthenticationError):
            failed += 1
    outcomes[thread_no] = (ok, failed)


class TestConcurrentInvocations:
    def test_audit_integrity_under_contention(self, server):
        with obs.enabled(metrics=True):
            outcomes: list = [None] * STRESS_THREADS
            threads = [
                threading.Thread(target=_hammer, args=(server, i, outcomes))
                for i in range(STRESS_THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            snap = obs.snapshot()

        assert all(o is not None for o in outcomes), "a stress thread died"
        total_ok = sum(ok for ok, _ in outcomes)
        total_failed = sum(f for _, f in outcomes)
        total = total_ok + total_failed
        assert total == STRESS_THREADS * INVOKES_PER_THREAD * 2

        # exactly one audit entry per invocation, each well-formed
        entries = list(server.audit_log)
        assert len(entries) == total
        assert server.audit_dropped == 0
        for entry in entries:
            assert entry.username in {
                "alice", "bob", "carol", "root", "mallory"
            }
            assert entry.elapsed > 0
            assert entry.at > 0
            if entry.ok:
                assert entry.error is None and entry.tool == "du"
            else:
                assert entry.error is not None
                assert entry.error.split(":")[0] in (
                    "ToolNotAllowed",
                    "AuthenticationError",
                )
        assert sum(1 for e in entries if e.ok) == total_ok
        assert sum(1 for e in entries if not e.ok) == total_failed

        # the metrics registry agrees with the audit log
        assert snap.counter_total("gufi_server_invocations_total") == total
        assert snap.counter("gufi_server_invocations_total", tool="du") == (
            total_ok + total_failed / 2  # mallory's failures also name du
        )
        assert (
            snap.counter_total("gufi_server_invoke_failures_total")
            == total_failed
        )
        assert snap.counter("gufi_server_audit_dropped_total") == 0.0
        hist_count = sum(
            h.count
            for (name, _), h in snap.histograms.items()
            if name == "gufi_server_invoke_seconds"
        )
        assert hist_count == total

    def test_concurrent_sessions_isolate_credentials(self, server):
        """Warm-session reuse under contention must never leak one
        caller's visibility to another."""
        from repro.core.query import Q1_LIST_PATHS

        results: dict[str, set] = {}
        lock = threading.Lock()

        def query_as(user: str) -> None:
            for _ in range(6):
                rows = server.invoke(user, "query", spec=Q1_LIST_PATHS).rows
                paths = {r[0] for r in rows}
                with lock:
                    seen = results.setdefault(user, paths)
                    assert paths == seen, f"visibility flapped for {user}"

        threads = [
            threading.Thread(target=query_as, args=(u,))
            for u in ("alice", "bob", "root")
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert "/home/alice/a.txt" in results["alice"]
        assert "/home/alice/a.txt" not in results["bob"]
        assert results["bob"] < results["root"]


class TestAuditCap:
    def test_cap_evicts_and_counts(self, demo_index, identity):
        with GUFIServer(
            demo_index, identity, nthreads=NTHREADS, audit_cap=16
        ) as srv, obs.enabled(metrics=True):
            for _ in range(40):
                srv.invoke("alice", "du", "/")
            assert len(srv.audit_log) == 16
            assert srv.audit_dropped == 24
            snap = obs.snapshot()
            assert snap.counter("gufi_server_audit_dropped_total") == 24.0
            assert (
                snap.counter("gufi_server_invocations_total", tool="du") == 40.0
            )

    def test_concurrent_appends_never_exceed_cap(self, demo_index, identity):
        with GUFIServer(
            demo_index, identity, nthreads=NTHREADS, audit_cap=10
        ) as srv:
            nthreads, per = 8, 5

            def work():
                for _ in range(per):
                    srv.invoke("alice", "du", "/")

            threads = [
                threading.Thread(target=work) for _ in range(nthreads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(srv.audit_log) == 10
            assert srv.audit_dropped == nthreads * per - 10
