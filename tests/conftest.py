"""Shared fixtures: hand-built trees with interesting permission
structure, plus session-scoped generated namespaces and built indexes
(building an index costs real file I/O, so expensive artifacts are
shared across tests that only read them)."""

from __future__ import annotations

import pytest

from repro.core.build import BuildOptions, dir2index
from repro.fs.permissions import Credentials
from repro.fs.tree import VFSTree
from repro.gen.datasets import dataset2
from repro.gen.namespace import apply_xattrs

#: identities used across permission tests
ALICE = Credentials(uid=1001, gid=1001)
BOB = Credentials(uid=1002, gid=1002)
CAROL_IN_PROJ = Credentials(uid=1003, gid=1003, groups=frozenset({100}))
NTHREADS = 2  # this sandbox serialises syscalls; keep pools small


def build_demo_tree() -> VFSTree:
    """A compact tree exercising every permission shape the engine and
    rollup must respect::

        /home/alice        0700 alice   (private home)
        /home/alice/sub    0700 alice
        /home/bob          0755 bob     (world-readable home)
        /home/bob/secret   0700 bob
        /proj/shared       0770 alice:100 (group area; carol in group)
        /proj/shared/data  0770 alice:100
        /public            0755 root
        /public/xonly      0711 root    (searchable, not listable)
        /public/ronly      0644 root    (listable name, not searchable)
    """
    t = VFSTree()
    t.mkdir("/home", mode=0o755, uid=0, gid=0)
    t.mkdir("/home/alice", mode=0o700, uid=1001, gid=1001)
    t.mkdir("/home/alice/sub", mode=0o700, uid=1001, gid=1001)
    t.create_file("/home/alice/a.txt", size=100, mode=0o600, uid=1001, gid=1001)
    t.create_file("/home/alice/sub/deep.dat", size=250, mode=0o600, uid=1001, gid=1001)
    t.mkdir("/home/bob", mode=0o755, uid=1002, gid=1002)
    t.create_file("/home/bob/b.txt", size=300, mode=0o644, uid=1002, gid=1002)
    t.mkdir("/home/bob/secret", mode=0o700, uid=1002, gid=1002)
    t.create_file("/home/bob/secret/s.key", size=50, mode=0o600, uid=1002, gid=1002)
    t.mkdir("/proj", mode=0o755, uid=0, gid=0)
    t.mkdir("/proj/shared", mode=0o770, uid=1001, gid=100)
    t.mkdir("/proj/shared/data", mode=0o770, uid=1001, gid=100)
    t.create_file("/proj/shared/p.c", size=700, mode=0o660, uid=1001, gid=100)
    t.create_file("/proj/shared/data/d.h5", size=900, mode=0o660, uid=1003, gid=100)
    t.mkdir("/public", mode=0o755, uid=0, gid=0)
    t.mkdir("/public/xonly", mode=0o711, uid=0, gid=0)
    t.create_file("/public/xonly/hidden.txt", size=10, mode=0o644, uid=0, gid=0)
    t.mkdir("/public/ronly", mode=0o644, uid=0, gid=0)
    t.create_file("/public/readme", size=42, mode=0o644, uid=0, gid=0)
    t.symlink("/public/link", "/home/bob/b.txt", uid=0, gid=0)
    return t


@pytest.fixture
def demo_tree() -> VFSTree:
    return build_demo_tree()


@pytest.fixture
def demo_index(demo_tree, tmp_path):
    """A fresh (non-rolled) index of the demo tree."""
    result = dir2index(
        demo_tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
    )
    return result.index


@pytest.fixture(scope="session")
def dataset2_small():
    """A generated dataset-2-shaped namespace, shared read-only."""
    return dataset2(scale=0.0002, seed=22)


@pytest.fixture(scope="session")
def dataset2_index(dataset2_small, tmp_path_factory):
    """A built (non-rolled) index of the shared namespace."""
    root = tmp_path_factory.mktemp("ds2idx")
    result = dir2index(
        dataset2_small.tree, root / "idx", opts=BuildOptions(nthreads=NTHREADS)
    )
    return result


@pytest.fixture(scope="session")
def xattr_namespace(tmp_path_factory):
    """Namespace with xattrs on ~40% of files plus a unique needle,
    and its index (xattr sharding enabled)."""
    ns = dataset2(scale=0.0002, seed=77)
    tagged, needle = apply_xattrs(ns, 0.4)
    root = tmp_path_factory.mktemp("xattridx")
    result = dir2index(
        ns.tree, root / "idx", opts=BuildOptions(nthreads=NTHREADS)
    )
    return ns, tagged, needle, result.index
