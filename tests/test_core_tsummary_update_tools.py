"""Tests for tree summaries (bfti), incremental updates, and the
user-facing tool layer."""

from __future__ import annotations

import pytest

from repro.core import db as dbmod
from repro.core.build import BuildOptions, dir2index
from repro.core.query import GUFIQuery, Q1_LIST_PATHS, QuerySpec
from repro.core.rollup import rollup
from repro.core.schema import RECTYPE_GROUP, RECTYPE_OVERALL, RECTYPE_USER
from repro.core.tools import FindFilters, GUFITools
from repro.core.tsummary import build_tsummary, drop_tsummary
from repro.core.update import update_directory
from tests.conftest import ALICE, BOB, NTHREADS, build_demo_tree


class TestTSummary:
    def brute_force(self, tree, top="/"):
        files = links = dirs = size = 0
        for p, ino in tree.iter_inodes():
            if p != top and not p.startswith(top.rstrip("/") + "/"):
                continue
            if ino.ftype.value == "d":
                if p != top:
                    dirs += 1
                size += ino.size
            else:
                files += ino.ftype.value == "f"
                links += ino.ftype.value == "l"
                size += ino.size
        return files, links, dirs, size

    def test_overall_matches_brute_force(self, demo_tree, demo_index):
        build_tsummary(demo_index, "/")
        conn = dbmod.open_ro(demo_index.db_path("/"))
        row = conn.execute(
            "SELECT totfiles, totlinks, totsubdirs, totsize FROM tsummary "
            "WHERE rectype = ?", (RECTYPE_OVERALL,),
        ).fetchone()
        conn.close()
        files, links, dirs, size = self.brute_force(demo_tree)
        assert row == (files, links, dirs, size)

    def test_per_user_rows(self, demo_tree, demo_index):
        build_tsummary(demo_index, "/")
        conn = dbmod.open_ro(demo_index.db_path("/"))
        per_user = dict(
            conn.execute(
                "SELECT uid, totfiles FROM tsummary WHERE rectype = ?",
                (RECTYPE_USER,),
            )
        )
        per_group = dict(
            conn.execute(
                "SELECT gid, totfiles FROM tsummary WHERE rectype = ?",
                (RECTYPE_GROUP,),
            )
        )
        conn.close()
        alice_files = sum(
            1 for _, i in demo_tree.iter_inodes()
            if i.ftype.value == "f" and i.uid == 1001
        )
        assert per_user[1001] == alice_files
        assert 100 in per_group

    def test_subtree_scope(self, demo_tree, demo_index):
        build_tsummary(demo_index, "/home/bob")
        conn = dbmod.open_ro(demo_index.db_path("/home/bob"))
        (size,) = conn.execute(
            "SELECT totsize FROM tsummary WHERE rectype = 0"
        ).fetchone()
        conn.close()
        assert size == self.brute_force(demo_tree, "/home/bob")[3]

    def test_same_result_after_rollup_with_fewer_reads(self, demo_index):
        r1 = build_tsummary(demo_index, "/")
        conn = dbmod.open_ro(demo_index.db_path("/"))
        before = conn.execute(
            "SELECT totfiles, totsize FROM tsummary WHERE rectype=0"
        ).fetchone()
        conn.close()
        rollup(demo_index, nthreads=NTHREADS)
        r2 = build_tsummary(demo_index, "/")
        conn = dbmod.open_ro(demo_index.db_path("/"))
        after = conn.execute(
            "SELECT totfiles, totsize FROM tsummary WHERE rectype=0"
        ).fetchone()
        conn.close()
        assert before == after
        assert r2.dirs_scanned < r1.dirs_scanned  # the paper's 14.8s->0.37s

    def test_drop(self, demo_index):
        build_tsummary(demo_index, "/")
        drop_tsummary(demo_index, "/")
        conn = dbmod.open_ro(demo_index.db_path("/"))
        assert conn.execute("SELECT COUNT(*) FROM tsummary").fetchone()[0] == 0
        conn.close()

    def test_rebuild_replaces(self, demo_index):
        build_tsummary(demo_index, "/")
        build_tsummary(demo_index, "/")
        conn = dbmod.open_ro(demo_index.db_path("/"))
        n = conn.execute(
            "SELECT COUNT(*) FROM tsummary WHERE rectype=0"
        ).fetchone()[0]
        conn.close()
        assert n == 1


class TestIncrementalUpdate:
    def test_update_reflects_new_files(self, demo_tree, demo_index):
        demo_tree.create_file("/home/bob/new.txt", size=999,
                              mode=0o644, uid=1002, gid=1002)
        update_directory(demo_index, demo_tree, "/home/bob")
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        rows = [r[0] for r in q.run(Q1_LIST_PATHS).rows]
        assert "/home/bob/new.txt" in rows

    def test_update_reflects_removed_files(self, demo_tree, demo_index):
        demo_tree.unlink("/home/bob/b.txt")
        update_directory(demo_index, demo_tree, "/home/bob")
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        rows = [r[0] for r in q.run(Q1_LIST_PATHS).rows]
        assert "/home/bob/b.txt" not in rows

    def test_security_fix_scenario(self, demo_tree, demo_index):
        """§III-A3: a user exposed a secret in a file name, chmods the
        directory, and requests an immediate index update — the name
        must disappear for other users at once."""
        demo_tree.create_file("/home/bob/SECRET-TOKEN-xyz", size=1,
                              mode=0o600, uid=1002, gid=1002)
        update_directory(demo_index, demo_tree, "/home/bob")
        q_alice = GUFIQuery(demo_index, creds=ALICE, nthreads=NTHREADS)
        rows = [r[0] for r in q_alice.run(Q1_LIST_PATHS).rows]
        assert any("SECRET-TOKEN" in r for r in rows)  # name is metadata
        # bob realises and locks his home dir
        demo_tree.chmod("/home/bob", 0o700, BOB)
        update_directory(demo_index, demo_tree, "/home/bob")
        rows = [r[0] for r in q_alice.run(Q1_LIST_PATHS).rows]
        assert not any("SECRET-TOKEN" in r for r in rows)

    def test_update_unrolls_path_only(self, demo_tree, demo_index):
        rollup(demo_index, nthreads=NTHREADS)
        alice_rolled_before = demo_index.dir_meta("/home/alice").rolledup
        demo_tree.create_file("/home/bob/secret/late.dat", size=4,
                              mode=0o600, uid=1002, gid=1002)
        result = update_directory(demo_index, demo_tree, "/home/bob/secret")
        # the path to the target is unrolled; siblings keep theirs
        assert demo_index.dir_meta("/home/alice").rolledup == alice_rolled_before
        q = GUFIQuery(demo_index, creds=BOB, nthreads=NTHREADS)
        rows = [r[0] for r in q.run(Q1_LIST_PATHS).rows]
        assert "/home/bob/secret/late.dat" in rows

    def test_recursive_update_prunes_stale_dirs(self, demo_tree, demo_index):
        demo_tree.unlink("/home/bob/secret/s.key")
        demo_tree.rmdir("/home/bob/secret", BOB)
        update_directory(demo_index, demo_tree, "/home/bob", recursive=True)
        assert not demo_index.index_dir("/home/bob/secret").exists()
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        rows = [r[0] for r in q.run(Q1_LIST_PATHS).rows]
        assert not any("secret" in r for r in rows)

    def test_update_converges_to_full_rebuild(self, demo_tree, tmp_path):
        idx = dir2index(
            demo_tree, tmp_path / "i1", opts=BuildOptions(nthreads=NTHREADS)
        ).index
        demo_tree.create_file("/proj/shared/newfile", size=11,
                              mode=0o660, uid=1001, gid=100)
        demo_tree.chmod("/proj/shared", 0o750)
        update_directory(idx, demo_tree, "/proj/shared")
        fresh = dir2index(
            demo_tree, tmp_path / "i2", opts=BuildOptions(nthreads=NTHREADS)
        ).index
        q1 = sorted(GUFIQuery(idx, nthreads=NTHREADS).run(Q1_LIST_PATHS).rows)
        q2 = sorted(GUFIQuery(fresh, nthreads=NTHREADS).run(Q1_LIST_PATHS).rows)
        assert q1 == q2
        assert idx.dir_meta("/proj/shared").mode == 0o750


class TestTools:
    def test_find_filters(self, demo_index):
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        result = tools.find("/", FindFilters(min_size=300, ftype="f"))
        paths = {r[0] for r in result.rows}
        assert paths == {"/home/bob/b.txt", "/proj/shared/p.c",
                         "/proj/shared/data/d.h5"}

    def test_find_name_like(self, demo_index):
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        result = tools.find("/", FindFilters(name_like="%.txt"))
        assert all(p.endswith(".txt") for p, *_ in result.rows)
        # root sees all three .txt files (including inside the 0711 dir)
        assert len(result.rows) == 3

    def test_find_respects_permissions(self, demo_index):
        tools = GUFITools(demo_index, creds=BOB, nthreads=NTHREADS)
        paths = {r[0] for r in tools.find("/").rows}
        assert not any("alice" in p for p in paths)

    def test_ls(self, demo_index):
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        assert tools.ls("/home/bob") == ["b.txt"]
        long = tools.ls("/home/bob", long_format=True)
        assert "b.txt" in long[0] and "-rw-r--r--" in long[0]

    def test_du_matches_sum(self, demo_tree, demo_index):
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        expected = sum(
            i.size for _, i in demo_tree.iter_inodes() if i.ftype.value != "d"
        )
        assert tools.du("/") == expected
        build_tsummary(demo_index, "/")
        assert tools.du("/", use_tsummary=True) == expected

    def test_du_subtree(self, demo_index):
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        assert tools.du("/home/alice") == 350

    def test_dir_sizes(self, demo_index):
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        sizes = dict(tools.dir_sizes("/home"))
        assert sizes["/home/alice"] == 100  # direct entries only
        assert sizes["/home/bob"] == 300

    def test_largest_files(self, demo_index):
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        top = tools.largest_files(limit=2)
        assert [t[1] for t in top] == [900, 700]

    def test_recently_modified(self, demo_index):
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        recent = tools.recently_modified(limit=3)
        assert len(recent) == 3
        mtimes = [r[1] for r in recent]
        assert mtimes == sorted(mtimes, reverse=True)

    def test_space_by_user(self, demo_index):
        tools = GUFITools(demo_index, nthreads=NTHREADS)
        usage = tools.space_by_user("/")
        assert usage[1001] == 100 + 250 + 700
        assert usage[1002] == 300 + 50

    def test_space_by_user_permission_scoped(self, demo_index):
        tools = GUFITools(demo_index, creds=BOB, nthreads=NTHREADS)
        usage = tools.space_by_user("/")
        assert 1001 not in usage or usage[1001] < 1050  # alice's private files out

    def test_xattr_search(self, xattr_namespace):
        ns, tagged, needle, index = xattr_namespace
        tools = GUFITools(index, nthreads=NTHREADS)
        result = tools.xattr_search("needle")
        assert any(needle == r[0] for r in result.rows)
