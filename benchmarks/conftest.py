"""Shared benchmark fixtures.

Each ``bench_*.py`` regenerates one of the paper's tables/figures via
the drivers in :mod:`repro.harness` and times the system-under-test
pieces with pytest-benchmark. Rendered result tables are written to
``benchmarks/results/*.txt`` (and echoed to the terminal) so a bench
run leaves the paper-comparable artifacts behind.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core.build import BuildOptions, build_from_stanzas
from repro.gen.datasets import dataset2
from repro.scan.scanners import TreeWalkScanner

from _bench_helpers import DS2_SCALE, NTHREADS


@pytest.fixture(scope="session")
def ds2_stanzas():
    """Scan of the shared dataset-2-shaped namespace."""
    ns = dataset2(scale=DS2_SCALE)
    scan = TreeWalkScanner(ns.tree, nthreads=NTHREADS).scan("/")
    return ns, scan.stanzas


@pytest.fixture(scope="session")
def ds2_index(ds2_stanzas, tmp_path_factory):
    """A built (non-rolled) GUFI index of the shared namespace."""
    _, stanzas = ds2_stanzas
    root = tmp_path_factory.mktemp("bench_gufi")
    result = build_from_stanzas(stanzas, root / "idx",
                                BuildOptions(nthreads=NTHREADS))
    return result
