"""§IV-B text claim — rollup database-count reduction across five
production-shaped namespaces (paper: 386× mean; 741× best on a home
space, 77× worst on a project space). The achievable factor scales
with directories-per-area, so the table reports the structural maximum
alongside the measured reduction.
"""

from __future__ import annotations

from repro.core.build import BuildOptions, dir2index
from repro.core.rollup import rollup, visible_db_count
from repro.gen.datasets import table1_namespace
from repro.harness import rollup_reduction

from _bench_helpers import NTHREADS, save_table


def bench_rollup_reduction_table(benchmark):
    table = benchmark.pedantic(
        lambda: rollup_reduction(scale=5e-5, nthreads=NTHREADS),
        rounds=1, iterations=1,
    )
    save_table("rollup_reduction", table)
    factors = [float(str(f).rstrip("x")) for f in table.column("reduction")]
    assert all(f >= 1 for f in factors)
    # home spaces roll up better than project spaces (the paper's
    # 741x-vs-77x spread, reproduced as an ordering)
    byname = dict(zip(table.column("filesystem"), factors))
    assert byname["/users"] > byname["/proj"]


def bench_rollup_users_namespace(benchmark, tmp_path_factory):
    """Unlimited rollup of the /users (home) namespace."""
    ns = table1_namespace("/users", scale=5e-5)
    counter = [0]

    def build_and_roll():
        counter[0] += 1
        root = tmp_path_factory.mktemp(f"rr{counter[0]}")
        idx = dir2index(ns.tree, root / "idx",
                        opts=BuildOptions(nthreads=NTHREADS)).index
        rollup(idx, limit=None, nthreads=NTHREADS)
        return visible_db_count(idx)

    after = benchmark.pedantic(build_and_roll, rounds=2, iterations=1)
    assert after < ns.tree.num_dirs
