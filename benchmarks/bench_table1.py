"""Table I — file-system scan and index-creation times.

Regenerates the paper's five-filesystem scan comparison: tree walks
(NFS/Lustre), a Lester-style inode-table scan (/scratch1), and an
HPSS SQL dump (/archive), with modelled scan times extrapolated to the
paper's entry counts, plus measured index-creation times.
"""

from __future__ import annotations

import pytest

from repro.core.build import BuildOptions, build_from_stanzas
from repro.gen.datasets import table1_namespace
from repro.harness import table1
from repro.scan.scanners import LesterScanner, TreeWalkScanner

from _bench_helpers import NTHREADS, save_table

SCALE = 8e-5


def bench_table1_full(benchmark):
    table = benchmark.pedantic(
        lambda: table1(scale=SCALE, nthreads=NTHREADS), rounds=1, iterations=1
    )
    save_table("table1", table)
    assert len(table.rows) == 5


@pytest.fixture(scope="module")
def scratch1_ns():
    return table1_namespace("/scratch1", scale=SCALE)


def bench_table1_treewalk_scan(benchmark, scratch1_ns):
    """Generic threaded tree-walk scan (the in-situ path)."""
    result = benchmark(
        lambda: TreeWalkScanner(scratch1_ns.tree, nthreads=NTHREADS).scan("/")
    )
    assert result.num_dirs == scratch1_ns.tree.num_dirs


def bench_table1_lester_scan(benchmark, scratch1_ns):
    """Inode-table scan — must beat the tree walk in modelled time."""
    result = benchmark(lambda: LesterScanner(scratch1_ns.tree).scan("/"))
    tw = TreeWalkScanner(scratch1_ns.tree, nthreads=NTHREADS).scan("/")
    assert result.modeled_time < tw.modeled_time


def bench_table1_index_creation(benchmark, scratch1_ns, tmp_path_factory):
    """Post-processing ingest of a completed scan (Table I's last
    column — the paper's '158s'/'229s' entries at full scale)."""
    stanzas = LesterScanner(scratch1_ns.tree).scan("/").stanzas
    counter = [0]

    def build():
        counter[0] += 1
        root = tmp_path_factory.mktemp(f"t1idx{counter[0]}")
        return build_from_stanzas(stanzas, root / "idx",
                                  BuildOptions(nthreads=NTHREADS))

    result = benchmark.pedantic(build, rounds=2, iterations=1)
    assert result.dirs_created == len(stanzas)
