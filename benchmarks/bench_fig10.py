"""Figure 10 — GUFI versus Brindexer on the four macro queries.

10a (root): list names / dir sizes / du via summaries / du via
tsummary, on a rolled-up GUFI index with a tree summary versus a
hash-partitioned Brindexer. Paper speedups: 1.5×, 8.2×, 6.3×, 230×.
10b (users): the same queries as unprivileged users — GUFI's cost
shrinks to the accessible subtree, Brindexer still scans everything.
"""

from __future__ import annotations

import pytest

from repro.baselines.brindexer import BrindexerIndex
from repro.core.build import BuildOptions, build_from_stanzas
from repro.core.query import (
    GUFIQuery,
    Q1_LIST_NAMES,
    Q2_DIR_SIZES,
    Q3_DU_SUMMARIES,
    QuerySpec,
)
from repro.core.rollup import rollup
from repro.core.tsummary import build_tsummary
from repro.fs.permissions import Credentials
from repro.harness import fig10

from _bench_helpers import DS2_SCALE, NTHREADS, save_table

N_SHARDS = 64
Q4 = QuerySpec(T="SELECT totsize FROM tsummary WHERE rectype = 0")


def bench_fig10_tables(benchmark):
    def run():
        return fig10(scale=DS2_SCALE, nthreads=NTHREADS,
                     n_shards=N_SHARDS, n_users=8,
                     rollup_fraction=1 / 50)

    table_a, table_b = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("fig10", table_a, table_b)
    speedups = table_a.column("modelled speedup")
    assert speedups[3] == max(speedups)  # tsummary dominates (230x-style)
    assert all(s > 0.4 for s in speedups[:3])  # near-parity at this scale


@pytest.fixture(scope="module")
def systems(ds2_stanzas, tmp_path_factory):
    ns, stanzas = ds2_stanzas
    n_entries = sum(len(s.entries) for s in stanzas)
    groot = tmp_path_factory.mktemp("f10g")
    built = build_from_stanzas(stanzas, groot / "idx",
                               BuildOptions(nthreads=NTHREADS))
    rollup(built.index, limit=max(4, n_entries // 259), nthreads=NTHREADS)
    build_tsummary(built.index, "/")
    broot = tmp_path_factory.mktemp("f10b")
    brin, _ = BrindexerIndex.build(stanzas, broot / "idx", n_shards=N_SHARDS)
    return ns, built.index, brin


def bench_fig10_q1_gufi(benchmark, systems):
    _, gufi, _ = systems
    q = GUFIQuery(gufi, nthreads=NTHREADS)
    assert benchmark(lambda: q.run(Q1_LIST_NAMES)).rows


def bench_fig10_q1_brindexer(benchmark, systems):
    _, _, brin = systems
    assert benchmark(lambda: brin.list_names(nthreads=NTHREADS)).rows


def bench_fig10_q2_gufi(benchmark, systems):
    _, gufi, _ = systems
    q = GUFIQuery(gufi, nthreads=NTHREADS)
    assert benchmark(lambda: q.run(Q2_DIR_SIZES)).rows


def bench_fig10_q2_brindexer(benchmark, systems):
    _, _, brin = systems
    assert benchmark(lambda: brin.dir_sizes(nthreads=NTHREADS)).rows


def bench_fig10_q3_gufi(benchmark, systems):
    _, gufi, _ = systems
    q = GUFIQuery(gufi, nthreads=NTHREADS)
    assert benchmark(lambda: q.run(Q3_DU_SUMMARIES)).rows[-1][0] > 0


def bench_fig10_q4_gufi_tsummary(benchmark, systems):
    """The 230× query: one tsummary row answers du for the tree."""
    _, gufi, _ = systems
    q = GUFIQuery(gufi, nthreads=NTHREADS)
    result = benchmark(lambda: q.run(Q4))
    assert result.dirs_visited == 1


def bench_fig10_q4_brindexer(benchmark, systems):
    """Brindexer has no tree summary: query 4 costs a full scan."""
    _, _, brin = systems
    assert benchmark(lambda: brin.du(nthreads=NTHREADS)).rows[0][0] > 0


def bench_fig10_user_q1_gufi(benchmark, systems):
    ns, gufi, _ = systems
    uid = ns.spec.population.uids[0]
    q = GUFIQuery(gufi, creds=Credentials(uid=uid, gid=uid),
                  nthreads=NTHREADS)
    result = benchmark(lambda: q.run(Q1_LIST_NAMES))
    assert result.dirs_denied >= 0


def bench_fig10_user_q1_brindexer(benchmark, systems):
    ns, _, brin = systems
    uid = ns.spec.population.uids[0]
    result = benchmark(lambda: brin.list_names(uid=uid, nthreads=NTHREADS))
    assert result.shards_read == N_SHARDS  # always a full scan
