"""Changefeed incremental indexing: O(changes), not O(tree).

The paper's pull-interval refresh pays a full rebuild per cycle no
matter how little changed (§III-A4). The changefeed consumer
(:func:`repro.core.changefeed.changefeed2index`) pays for the *delta*:
this bench applies a fixed-size mutation batch to namespaces of
doubling size and records the incremental apply time next to a full
``dir2index`` rebuild of the same mutated tree — the rebuild cost
grows with the tree, the apply cost stays flat with the batch.

Correctness gates the timing claim: at every scale the incrementally
updated index must answer Q1 byte-identically to the from-scratch
rebuild before any number is reported.

Honesty matters more than the headline: the report records the CPUs
this process may run on, the thread-pool width, and the batch size.
The speedup target is only asserted at the largest scale of the full
run — a smoke run on a tiny tree asserts equivalence, not timing.

Run standalone:  PYTHONPATH=src python benchmarks/bench_changefeed.py
CI smoke:        PYTHONPATH=src python benchmarks/bench_changefeed.py --smoke
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _bench_helpers import NTHREADS, save_bench_report

from repro.core.build import BuildOptions, dir2index
from repro.core.changefeed import changefeed2index
from repro.core.query import Q1_LIST_PATHS, GUFIQuery
from repro.fs.changelog import ChangeJournal
from repro.gen.datasets import dataset2
from repro.gen.namespace import NamespaceMutator
from repro.scan.walker import default_worker_count

#: mutations per applied batch — the "changes" in O(changes)
BATCH = 40
#: batches applied per scale; the median apply time is reported
BATCHES = 3
SCALES = (0.0002, 0.0004, 0.0008)
SMOKE_SCALES = (0.0001, 0.0002)
#: full-run target: incremental apply beats the full rebuild by this
#: factor at the largest scale
SPEEDUP_TARGET = 2.0


def query_rows(index) -> list:
    q = GUFIQuery(index, nthreads=NTHREADS)
    try:
        return sorted(q.run(Q1_LIST_PATHS).rows)
    finally:
        q.close()


def bench_one_scale(tmp_root: Path, scale: float, seed: int = 7) -> dict:
    opts = BuildOptions(nthreads=NTHREADS)
    ns = dataset2(scale=scale, seed=seed)
    index = dir2index(ns.tree, tmp_root / "idx", opts=opts).index
    journal = ChangeJournal()
    ns.tree.set_changelog(journal)
    mut = NamespaceMutator(ns, seed=seed)

    apply_times: list[float] = []
    events_applied = dirs_rebuilt = 0
    for _ in range(BATCHES):
        mut.mutate(BATCH)
        t0 = time.monotonic()
        result = changefeed2index(index, ns.tree, journal, opts=opts)
        apply_times.append(time.monotonic() - t0)
        events_applied += result.events_applied
        dirs_rebuilt += result.dirs_rebuilt

    # full rebuild of the *same* mutated tree — the O(tree) baseline
    rebuild_times: list[float] = []
    fresh_index = None
    for i in range(BATCHES):
        t0 = time.monotonic()
        fresh_index = dir2index(
            ns.tree, tmp_root / f"fresh{i}", opts=opts
        ).index
        rebuild_times.append(time.monotonic() - t0)

    identical = query_rows(index) == query_rows(fresh_index)
    assert identical, f"scale {scale}: incremental index diverged"

    inc = statistics.median(apply_times)
    full = statistics.median(rebuild_times)
    row = {
        "dirs": len(ns.dirs),
        "files": len(ns.files),
        "events_applied": events_applied,
        "dirs_rebuilt": dirs_rebuilt,
        "incremental_median_s": inc,
        "full_rebuild_median_s": full,
        "speedup": full / inc if inc > 0 else float("inf"),
        "identical_rows": identical,
    }
    print(
        f"scale {scale:<7} {row['dirs']:>5} dirs  "
        f"apply {inc * 1e3:8.1f}ms  rebuild {full * 1e3:8.1f}ms  "
        f"speedup {row['speedup']:6.2f}x  rows identical"
    )
    return row


def run_bench(tmp_root: Path, scales) -> dict:
    report = {
        "cpus": default_worker_count(),
        "nthreads": NTHREADS,
        "batch_mutations": BATCH,
        "batches": BATCHES,
        "scales": {},
    }
    for scale in scales:
        sub = tmp_root / f"s{scale}"
        sub.mkdir(parents=True, exist_ok=True)
        report["scales"][str(scale)] = bench_one_scale(sub, scale)
    return report


def check_targets(report: dict, smoke: bool) -> None:
    rows = list(report["scales"].values())
    for row in rows:
        assert row["identical_rows"]
    if smoke or len(rows) < 2:
        return
    smallest, largest = rows[0], rows[-1]
    # O(tree): the rebuild grows with the namespace...
    growth_full = (
        largest["full_rebuild_median_s"]
        / smallest["full_rebuild_median_s"]
    )
    # ...O(changes): the apply must grow strictly slower
    growth_inc = (
        largest["incremental_median_s"]
        / smallest["incremental_median_s"]
    )
    assert growth_inc < growth_full, (
        f"apply cost grew {growth_inc:.2f}x vs rebuild {growth_full:.2f}x "
        "— incremental path is not O(changes)"
    )
    assert largest["speedup"] >= SPEEDUP_TARGET, (
        f"{largest['speedup']:.2f}x at the largest scale "
        f"(target {SPEEDUP_TARGET}x)"
    )


def save_report(report: dict) -> Path:
    return save_bench_report("changefeed", report)


def bench_changefeed(tmp_path_factory):
    """pytest entry point (collected by the bench_* convention)."""
    report = run_bench(
        tmp_path_factory.mktemp("changefeed"), SMOKE_SCALES
    )
    check_targets(report, smoke=True)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="two tiny scales, correctness-only: identical rows after "
        "every applied batch; timing recorded but not asserted",
    )
    args = parser.parse_args(argv)

    scales = SMOKE_SCALES if args.smoke else SCALES
    with tempfile.TemporaryDirectory(prefix="gufi_changefeed_") as td:
        report = run_bench(Path(td), scales)
        check_targets(report, smoke=args.smoke)
        if args.smoke:
            print(
                "smoke ok: incremental apply identical to full rebuild "
                f"at every scale ({BATCHES}x{BATCH} mutations each)"
            )
        else:
            print(f"saved {save_report(report)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
