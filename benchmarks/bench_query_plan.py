"""Benchmark for summary-statistics query planning.

A *selective* warm query (``size>>1g newer:7d`` — under 5% of
directories hold a matching file) is run with planning on and off
against the same warm session. With planning, directories whose cached
summary statistics prove them unmatchable never attach their database
at all; without it, every permitted directory is attached and its
entries scanned.

Acceptance targets (asserted here and re-checked in CI smoke mode):

* planning opens **>=5x fewer** databases than the unplanned run;
* the planned warm run is **>=2x faster**;
* the two runs return **byte-identical rows** (pruning is
  conservative — see :mod:`repro.core.plan`).

Run standalone:  PYTHONPATH=src python benchmarks/bench_query_plan.py
CI smoke mode:   PYTHONPATH=src python benchmarks/bench_query_plan.py --smoke
Run via pytest:  pytest benchmarks/bench_query_plan.py
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _bench_helpers import NTHREADS, save_bench_report

from repro.core.build import BuildOptions, dir2index
from repro.core.query import GUFIQuery
from repro.core.search import parse
from repro.fs.tree import VFSTree

REPS = 7
NOW = 1_700_000_000
DAY = 86400
QUERY = "size>>1g newer:7d"

#: acceptance targets from the issue
OPENS_RATIO_TARGET = 5.0
SPEEDUP_TARGET = 2.0


def build_namespace(
    groups: int = 25, dirs_per_group: int = 18, match_every: int = 24
) -> VFSTree:
    """A two-level project namespace where ~1/match_every of the leaf
    directories hold one large, recently-modified file; everything
    else is small and old. Deterministic — no RNG, no wall clock."""
    tree = VFSTree()
    tree.mkdir("/proj", mode=0o755, uid=0, gid=0)
    n = 0
    for g in range(groups):
        gdir = f"/proj/g{g:02d}"
        tree.mkdir(gdir, mode=0o755, uid=0, gid=0)
        for d in range(dirs_per_group):
            leaf = f"{gdir}/d{d:03d}"
            tree.mkdir(leaf, mode=0o755, uid=1001, gid=1001)
            for f in range(4):
                tree.create_file(
                    f"{leaf}/small{f}.dat",
                    size=1024 * (1 + (n + f) % 64),
                    mode=0o644,
                    uid=1001,
                    gid=1001,
                    mtime=NOW - 100 * DAY - n,
                )
            if n % match_every == 0:
                tree.create_file(
                    f"{leaf}/checkpoint.h5",
                    size=2 * 2**30 + n,
                    mode=0o644,
                    uid=1001,
                    gid=1001,
                    mtime=NOW - 1 * DAY - n,
                )
            n += 1
    return tree


def _times(fn, reps: int = REPS) -> list[float]:
    out = []
    for _ in range(reps):
        t0 = time.monotonic()
        fn()
        out.append(time.monotonic() - t0)
    return out


def run_plan_bench(index, reps: int = REPS) -> dict:
    parsed = parse(QUERY, now=NOW)
    spec = parsed.to_spec()
    plan = parsed.to_plan()

    q = GUFIQuery(index, nthreads=NTHREADS)
    try:
        q.run(spec)  # untimed warm-up: populates the DirMeta cache
        off = q.run(spec)
        on = q.run(spec, plan=plan)
        off_times = _times(lambda: q.run(spec), reps)
        on_times = _times(lambda: q.run(spec, plan=plan), reps)
    finally:
        q.close()

    off_med = statistics.median(off_times)
    on_med = statistics.median(on_times)
    assert sorted(on.rows) == sorted(off.rows), (
        "planned and unplanned runs disagree — the plan is not "
        "conservative"
    )
    return {
        "query": QUERY,
        "nthreads": NTHREADS,
        "reps": reps,
        "matches": len(on.rows),
        "dirs_visited": off.dirs_visited,
        "dbs_opened_off": off.dbs_opened,
        "dbs_opened_on": on.dbs_opened,
        "dirs_pruned_by_plan": on.dirs_pruned_by_plan,
        "attaches_elided": on.attaches_elided,
        "opens_ratio": (
            off.dbs_opened / on.dbs_opened
            if on.dbs_opened
            else float("inf")
        ),
        "off_median_s": off_med,
        "off_min_s": min(off_times),
        "on_median_s": on_med,
        "on_min_s": min(on_times),
        "speedup": off_med / on_med if on_med > 0 else float("inf"),
    }


def check_targets(report: dict, smoke: bool = False) -> None:
    assert report["dirs_pruned_by_plan"] > 0, "plan pruned nothing"
    assert report["attaches_elided"] > 0, "plan elided no attaches"
    if smoke:
        # CI runs on a tiny namespace where timing is all noise: the
        # correctness + counter assertions above are the smoke gate.
        return
    assert report["opens_ratio"] >= OPENS_RATIO_TARGET, (
        f"planning opened only {report['opens_ratio']:.1f}x fewer dbs "
        f"(target {OPENS_RATIO_TARGET}x): "
        f"{report['dbs_opened_on']} vs {report['dbs_opened_off']}"
    )
    assert report["speedup"] >= SPEEDUP_TARGET, (
        f"planned warm run only {report['speedup']:.2f}x faster "
        f"(target {SPEEDUP_TARGET}x)"
    )


def save_report(report: dict) -> Path:
    return save_bench_report("query_plan", report)


def _build_index(tmp_root: Path, smoke: bool):
    if smoke:
        tree = build_namespace(groups=4, dirs_per_group=5, match_every=7)
    else:
        tree = build_namespace()
    return dir2index(
        tree, tmp_root / "idx", opts=BuildOptions(nthreads=NTHREADS)
    ).index


def bench_query_plan(tmp_path_factory):
    """pytest entry point (collected by the bench_* convention)."""
    index = _build_index(tmp_path_factory.mktemp("plan"), smoke=False)
    report = run_plan_bench(index)
    _print(report)
    print(f"saved {save_report(report)}")
    check_targets(report)


def _print(report: dict) -> None:
    print(
        f"planning off: {report['dbs_opened_off']:5d} dbs opened, "
        f"{report['off_median_s'] * 1e3:8.2f}ms median"
    )
    print(
        f"planning on:  {report['dbs_opened_on']:5d} dbs opened, "
        f"{report['on_median_s'] * 1e3:8.2f}ms median "
        f"({report['dirs_pruned_by_plan']} pruned, "
        f"{report['attaches_elided']} attaches elided)"
    )
    print(
        f"-> {report['opens_ratio']:.1f}x fewer opens, "
        f"{report['speedup']:.2f}x faster, "
        f"{report['matches']} identical rows"
    )


def main(argv: list[str] | None = None) -> int:
    import argparse
    import tempfile

    ap = argparse.ArgumentParser()
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="tiny namespace; assert pruning + identical rows only",
    )
    args = ap.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="gufi_plan_") as td:
        index = _build_index(Path(td), smoke=args.smoke)
        report = run_plan_bench(index, reps=3 if args.smoke else REPS)
    _print(report)
    if not args.smoke:
        print(f"saved {save_report(report)}")
    check_targets(report, smoke=args.smoke)
    print("planning smoke OK" if args.smoke else "targets met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
