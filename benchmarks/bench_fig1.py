"""Figure 1 — metadata query time across file-system technologies.

Regenerates the paper's opening comparison: ``find -ls`` / ``du -s``
over a Linux-kernel-shaped source tree on GPFS, Lustre, NFS, and a
local file system (per-operation latency models) versus GUFI (the real
index, measured, plus the same I/O through the paper's SSD model).

Expected shape: GPFS/Lustre ≫ NFS ≫ local ≳ GUFI.
"""

from __future__ import annotations

import pytest

from repro.core.build import BuildOptions, dir2index
from repro.core.query import GUFIQuery, Q3_DU_SUMMARIES, QuerySpec
from repro.gen.datasets import linux_kernel_tree
from repro.harness import fig1

from _bench_helpers import NTHREADS, save_table

SCALE = 0.15


def bench_fig1_table(benchmark):
    """Produce the full Fig 1 table (the benchmark times one run of
    the whole comparison)."""
    table = benchmark.pedantic(
        lambda: fig1(scale=SCALE, nthreads=NTHREADS), rounds=1, iterations=1
    )
    save_table("fig1", table)
    times = dict(zip(table.column("system"), table.column("find -ls (s)")))
    assert times["gpfs"] > times["nfs"] > times["gufi (modelled)"]


@pytest.fixture(scope="module")
def kernel_index(tmp_path_factory):
    ns = linux_kernel_tree(scale=SCALE)
    root = tmp_path_factory.mktemp("fig1_idx")
    return dir2index(ns.tree, root / "idx",
                     opts=BuildOptions(nthreads=NTHREADS))


def bench_fig1_gufi_find_ls(benchmark, kernel_index):
    """GUFI's find-ls equivalent, wall-clock (the repeatable kernel of
    Fig 1's GUFI bar)."""
    q = GUFIQuery(kernel_index.index, nthreads=NTHREADS)
    spec = QuerySpec(
        S="SELECT spath(name, isroot), mode, uid, gid, size FROM summary",
        E="SELECT rpath(dname, d_isroot, name), mode, uid, gid, size, mtime "
        "FROM vrpentries",
    )
    result = benchmark(lambda: q.run(spec))
    assert result.rows


def bench_fig1_gufi_du(benchmark, kernel_index):
    """GUFI's du -s equivalent, wall-clock."""
    q = GUFIQuery(kernel_index.index, nthreads=NTHREADS)
    result = benchmark(lambda: q.run(Q3_DU_SUMMARIES))
    assert result.rows[-1][0] > 0
