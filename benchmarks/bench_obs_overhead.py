"""Overhead budget for the observability subsystem (repro.obs).

The same selective warm query is timed against one warm session in
three modes, interleaved rep-by-rep so machine noise hits all modes
equally:

* **disabled** — the null recorder/tracer/log (the default);
* **metrics**  — counters + per-stage timings recording;
* **full**     — metrics + span tracing + slow-query log.

Acceptance targets (asserted here; smoke mode re-checks function, not
timing):

* **metrics** — the always-on production configuration — costs <= 5%
  over disabled (median of per-rep paired ratios: machine load drifts
  across a run, but adjacent timings share it, so pairing cancels the
  drift);
* **full** stays under a secondary ceiling (25%). Tracing is an
  on-demand diagnostic (``--trace-out``) that emits one span per
  directory, and this workload is its worst case by construction:
  the planned warm query elides nearly every attach, so a directory
  costs only a cache lookup and the span is measurable against it.
  Against any query that actually executes SQL per directory the span
  cost amortises into the noise;
* the disabled path is genuinely null: a no-op counter()/span() call
  costs well under a microsecond (measured directly).

Smoke mode also exercises every instrumented subsystem — build, query
(planned), rollup, walker retries, a server invocation — and prints
the Prometheus export so CI can grep for the core metric names.

Run standalone:  PYTHONPATH=src python benchmarks/bench_obs_overhead.py
CI smoke mode:   PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke
Run via pytest:  pytest benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _bench_helpers import NTHREADS, save_bench_report
from bench_query_plan import NOW, QUERY, build_namespace

from repro import obs
from repro.core.build import BuildOptions, dir2index
from repro.core.query import GUFIQuery
from repro.core.search import parse

REPS = 15
NULL_CALLS = 200_000

#: acceptance target from the issue: the always-on metrics
#: configuration costs <= 5% on the hottest query path
OVERHEAD_TARGET_PCT = 5.0
#: ceiling for the on-demand full-tracing diagnostic mode, measured on
#: its worst-case workload (see module docstring)
TRACING_CEILING_PCT = 25.0
#: a "null" op that costs more than this is not a null op
NULL_NS_CEILING = 2_000.0


def _null_overhead_ns() -> dict:
    """Cost of the disabled-mode no-ops, in ns per call."""
    rec = obs.NULL_METRICS
    t0 = time.perf_counter()
    for _ in range(NULL_CALLS):
        rec.counter("gufi_bench_noop_total")
    counter_ns = (time.perf_counter() - t0) / NULL_CALLS * 1e9

    tr = obs.NULL_TRACER
    t0 = time.perf_counter()
    for _ in range(NULL_CALLS):
        with tr.span("bench.noop"):
            pass
    span_ns = (time.perf_counter() - t0) / NULL_CALLS * 1e9
    return {"null_counter_ns": counter_ns, "null_span_ns": span_ns}


def run_overhead_bench(index, reps: int = REPS) -> dict:
    parsed = parse(QUERY, now=NOW)
    spec = parsed.to_spec()
    plan = parsed.to_plan()

    q = GUFIQuery(index, nthreads=NTHREADS)
    times: dict[str, list[float]] = {"disabled": [], "metrics": [], "full": []}
    try:
        q.run(spec, plan=plan)  # untimed warm-up: populates the caches
        for _ in range(reps):
            # interleaved so drift/noise is shared across modes
            t0 = time.monotonic()
            q.run(spec, plan=plan)
            times["disabled"].append(time.monotonic() - t0)

            with obs.enabled(metrics=True):
                t0 = time.monotonic()
                q.run(spec, plan=plan)
                times["metrics"].append(time.monotonic() - t0)

            with obs.enabled(metrics=True, tracing=True, slow_query_ms=1e9):
                t0 = time.monotonic()
                q.run(spec, plan=plan)
                times["full"].append(time.monotonic() - t0)
    finally:
        q.close()

    med = {mode: statistics.median(ts) for mode, ts in times.items()}
    lo = {mode: min(ts) for mode, ts in times.items()}
    # Overhead is the median of per-rep ratios against the disabled
    # run of the *same* rep: machine load in this sandbox drifts by
    # tens of percent across a run, but adjacent timings share it, so
    # pairing cancels the drift and the median votes out the spikes.
    over_m = statistics.median(
        m / d for d, m in zip(times["disabled"], times["metrics"])
    )
    over_f = statistics.median(
        f / d for d, f in zip(times["disabled"], times["full"])
    )
    report = {
        "query": QUERY,
        "nthreads": NTHREADS,
        "reps": reps,
        "disabled_median_s": med["disabled"],
        "metrics_median_s": med["metrics"],
        "full_median_s": med["full"],
        "disabled_min_s": lo["disabled"],
        "metrics_min_s": lo["metrics"],
        "full_min_s": lo["full"],
        "metrics_overhead_pct": (over_m - 1.0) * 100.0,
        "full_overhead_pct": (over_f - 1.0) * 100.0,
    }
    report.update(_null_overhead_ns())
    return report


def check_targets(report: dict, smoke: bool = False) -> None:
    assert report["null_counter_ns"] < NULL_NS_CEILING, (
        f"disabled counter() costs {report['null_counter_ns']:.0f}ns/call — "
        "the null path is not null"
    )
    assert report["null_span_ns"] < NULL_NS_CEILING, (
        f"disabled span() costs {report['null_span_ns']:.0f}ns/call — "
        "the null path is not null"
    )
    if smoke:
        # CI's tiny namespace makes percentages pure noise; the
        # functional checks in run_smoke are the gate there.
        return
    assert report["metrics_overhead_pct"] <= OVERHEAD_TARGET_PCT, (
        f"metrics recording costs {report['metrics_overhead_pct']:.1f}% "
        f"(target <= {OVERHEAD_TARGET_PCT}%): "
        f"{report['metrics_min_s'] * 1e3:.2f}ms vs "
        f"{report['disabled_min_s'] * 1e3:.2f}ms"
    )
    assert report["full_overhead_pct"] <= TRACING_CEILING_PCT, (
        f"full tracing costs {report['full_overhead_pct']:.1f}% on its "
        f"worst-case workload (ceiling {TRACING_CEILING_PCT}%)"
    )


def save_report(report: dict) -> Path:
    return save_bench_report("obs_overhead", report)


def _print(report: dict) -> None:
    print(
        f"disabled: {report['disabled_min_s'] * 1e3:8.2f}ms min  "
        f"(null counter {report['null_counter_ns']:.0f}ns, "
        f"null span {report['null_span_ns']:.0f}ns)"
    )
    print(
        f"metrics:  {report['metrics_min_s'] * 1e3:8.2f}ms min  "
        f"({report['metrics_overhead_pct']:+.1f}%)"
    )
    print(
        f"full:     {report['full_min_s'] * 1e3:8.2f}ms min  "
        f"({report['full_overhead_pct']:+.1f}%)"
    )


# ----------------------------------------------------------------------
# Smoke mode: every instrumented subsystem fires, counters agree with
# the public result fields, and the Prometheus export carries the core
# metric names CI greps for.
# ----------------------------------------------------------------------

def run_smoke(tmp_root: Path) -> None:
    from repro.core.rollup import rollup
    from repro.core.server import GUFIServer, IdentityProvider
    from repro.obs.export import to_prometheus
    from repro.scan.walker import ParallelTreeWalker, RetryPolicy

    tree = build_namespace(groups=3, dirs_per_group=4, match_every=5)
    parsed = parse(QUERY, now=NOW)
    with obs.enabled(metrics=True, tracing=True, slow_query_ms=0.0):
        # build, then a planned + a single-dir query (before rollup,
        # which would collapse the tree and starve the pruning gate)
        result = dir2index(
            tree, tmp_root / "idx", opts=BuildOptions(nthreads=NTHREADS)
        )
        index = result.index
        with GUFIQuery(index, nthreads=NTHREADS) as q:
            qr = q.run(parsed.to_spec(), plan=parsed.to_plan())
            q.run_single(parsed.to_spec(), "/proj")

        # registry counters must agree with the public result fields
        # (snapshotted now — the server invocation below runs its own
        # query and would shift the totals)
        snap = obs.snapshot()
        assert snap.counter_total("gufi_build_dirs_total") == result.dirs_created
        assert (
            snap.counter_total("gufi_query_dirs_visited_total")
            == qr.dirs_visited + 1  # + the run_single directory
        )
        assert (
            snap.counter("gufi_query_dirs_pruned_total")
            >= qr.dirs_pruned_by_plan > 0
        )
        assert qr.stage_seconds is not None and qr.stage_seconds["E"] > 0

        rollup(index, nthreads=NTHREADS)

        # a walker run whose first expansion fails transiently, so the
        # retry counter fires
        flaky = {"left": 2}

        def expand(item):
            if flaky["left"]:
                flaky["left"] -= 1
                raise OSError("transient")
            return []

        wstats = ParallelTreeWalker(NTHREADS).walk(
            ["root"], expand, retry=RetryPolicy(sleep=lambda s: None)
        )
        assert wstats.items_retried == 2

        # one audited server invocation
        idp = IdentityProvider()
        idp.add_user("alice", uid=1001, gid=1001)
        with GUFIServer(index, idp, nthreads=NTHREADS) as server:
            server.invoke("alice", "du", "/")
            assert len(server.audit_log) == 1
            entry = server.audit_log[0]
            assert entry.ok and entry.elapsed > 0 and entry.error is None

        snap = obs.snapshot()
        assert snap.counter_total("gufi_walker_retries_total") == 2
        assert snap.counter_total("gufi_server_invocations_total") == 1

        # spans: the walk nests under the query, directories under both
        spans = obs.tracer().spans()
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name, []).append(s)
        run_span = by_name["query.run"][0]
        walk = [
            s for s in by_name["walker.walk"] if s.parent_id == run_span.span_id
        ]
        assert walk, "walker.walk span did not nest under query.run"
        assert any(
            s.parent_id == walk[0].span_id for s in by_name["query.dir"]
        ), "query.dir spans did not nest under the walk"
        assert by_name["build.dir"] and by_name["server.invoke"]

        # threshold 0ms: everything lands in the slow log
        assert len(obs.slow_log()) >= 2

        text = to_prometheus(snap)
    print(text)
    print("obs smoke OK", file=sys.stderr)


def bench_obs_overhead(tmp_path_factory):
    """pytest entry point (collected by the bench_* convention)."""
    tree = build_namespace()
    index = dir2index(
        tree,
        tmp_path_factory.mktemp("obs") / "idx",
        opts=BuildOptions(nthreads=NTHREADS),
    ).index
    report = run_overhead_bench(index)
    _print(report)
    print(f"saved {save_report(report)}")
    check_targets(report)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import tempfile

    ap = argparse.ArgumentParser()
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="tiny namespace; functional checks + Prometheus dump only",
    )
    args = ap.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="gufi_obs_") as td:
        if args.smoke:
            run_smoke(Path(td))
            return 0
        tree = build_namespace()
        index = dir2index(
            tree, Path(td) / "idx", opts=BuildOptions(nthreads=NTHREADS)
        ).index
        report = run_overhead_bench(index)
    _print(report)
    print(f"saved {save_report(report)}")
    check_targets(report)
    print("targets met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
