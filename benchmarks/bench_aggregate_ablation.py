"""Ablation — per-thread result databases versus a single shared one.

§III-C2: "per-directory results are written to per-thread in-memory
databases to avoid contention resulting from multiple threads
inserting into a single database." This bench quantifies that design
choice by running the same aggregation both ways:

* engine path: per-thread result DBs + J-merge (the GUFI design);
* contended path: every worker inserts into one shared SQLite
  connection guarded by a lock (what the design avoids).
"""

from __future__ import annotations

import sqlite3
import threading

from repro.core import db as dbmod
from repro.core.query import GUFIQuery, QuerySpec
from repro.scan.walker import ParallelTreeWalker

from _bench_helpers import NTHREADS, save_table
from repro.harness.results import ResultTable

AGG_SPEC = QuerySpec(
    I="CREATE TABLE usage (uid INTEGER, bytes INTEGER)",
    E="INSERT INTO usage SELECT uid, TOTAL(size) FROM pentries GROUP BY uid",
    J="INSERT INTO aggregate.usage SELECT uid, TOTAL(bytes) FROM usage "
      "GROUP BY uid",
    G="SELECT uid, TOTAL(bytes) FROM usage GROUP BY uid",
)


def shared_db_aggregate(index, nthreads: int) -> dict[int, float]:
    """The contended alternative: one shared result DB, one big lock."""
    shared = sqlite3.connect(":memory:", check_same_thread=False)
    shared.execute("CREATE TABLE usage (uid INTEGER, bytes REAL)")
    lock = threading.Lock()

    def expand(source_path: str) -> list[str]:
        db_path = index.db_path(source_path)
        if not db_path.exists():
            return []
        conn = dbmod.open_ro(db_path)
        try:
            rows = conn.execute(
                "SELECT uid, TOTAL(size) FROM pentries GROUP BY uid"
            ).fetchall()
        finally:
            conn.close()
        with lock:  # the contention the GUFI design avoids
            shared.executemany("INSERT INTO usage VALUES (?,?)", rows)
        prefix = "" if source_path == "/" else source_path
        return [f"{prefix}/{n}" for n in index.subdir_names(source_path)]

    ParallelTreeWalker(nthreads).walk(["/"], expand)
    out = dict(
        shared.execute("SELECT uid, TOTAL(bytes) FROM usage GROUP BY uid")
    )
    shared.close()
    return out


def bench_aggregate_per_thread_dbs(benchmark, ds2_index):
    """The engine's per-thread-DB + merge design."""
    q = GUFIQuery(ds2_index.index, nthreads=NTHREADS)
    result = benchmark(lambda: q.run(AGG_SPEC))
    assert result.rows


def bench_aggregate_shared_db(benchmark, ds2_index):
    """The contended single-shared-DB alternative; results must agree
    with the engine's."""
    got = benchmark(lambda: shared_db_aggregate(ds2_index.index, NTHREADS))
    q = GUFIQuery(ds2_index.index, nthreads=NTHREADS)
    engine = {int(u): b for u, b in q.run(AGG_SPEC).rows}
    assert {int(u): round(b) for u, b in got.items()} == {
        u: round(b) for u, b in engine.items()
    }
    table = ResultTable(
        title="Aggregation ablation: per-user byte totals agree",
        columns=["uids", "total bytes"],
    )
    table.add(len(engine), sum(engine.values()))
    save_table("aggregate_ablation", table)
