"""Serving-layer benchmark: admission control vs queue collapse.

Drives the full in-process serving stack (auth → QoS rings →
executor → warm sessions) with an **open-loop** arrival process at 4x
the measured service capacity — the regime where a queue either
stays bounded or collapses. Two modes over identical traffic:

* **no_control** — an effectively unbounded admission queue: every
  request is accepted and waits. Arrivals outpace service, the queue
  grows linearly, and tail latency grows with it (queue collapse:
  p99 is dominated by position-in-queue, not service time).
* **admission_control** — the bounded queue: overflow is shed
  immediately with 503 + retry-after. Tail latency stays within a
  small multiple of the median because no admitted request ever
  waits behind more than ``queue_limit`` others.

The report records p50/p95/p99 latency, throughput, and shed rate
for both modes, plus the honest context (cpu count, worker count,
client count, oversubscription factor). The full run asserts the
paper-shaped outcome: controlled p99 <= 5x p50 while the
uncontrolled tail is far worse. ``--smoke`` replays a scaled-down
run without the latency assertions (CI machines are noisy) and
prints a Prometheus dump carrying every ``gufi_serve_*`` series CI
greps for.

Run standalone:  PYTHONPATH=src python benchmarks/bench_serving.py
Smoke (CI):      PYTHONPATH=src python benchmarks/bench_serving.py --smoke
"""

from __future__ import annotations

import asyncio
import os
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _bench_helpers import (
    NTHREADS,
    load_bench_baseline,
    save_bench_report,
)

from repro import obs
from repro.core.build import BuildOptions, dir2index
from repro.core.server import GUFIServer, IdentityProvider
from repro.serve import ASGIClient, GUFIApp

#: executor slots in both modes (the serving capacity under test)
WORKERS = 2
#: open-loop arrival rate as a multiple of measured capacity
OVERSUBSCRIPTION = 4.0
#: requests per mode (full run / --smoke)
N_REQUESTS = 1200
N_SMOKE = 120
#: the acceptance bound: controlled p99 within this multiple of p50
P99_OVER_P50_LIMIT = 5.0


def build_identity() -> IdentityProvider:
    idp = IdentityProvider()
    idp.add_user("root", uid=0, gid=0)
    idp.add_user("alice", uid=1001, gid=1001)
    idp.add_user("bob", uid=1002, gid=1002)
    return idp


def build_bench_index(tmp_root: Path):
    sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))
    from conftest import build_demo_tree

    tree = build_demo_tree()
    return dir2index(
        tree, tmp_root / "idx", opts=BuildOptions(nthreads=NTHREADS)
    ).index


def measure_capacity(server: GUFIServer, n: int = 60) -> float:
    """Closed-loop service rate (requests/s) at full worker
    concurrency — the denominator for the oversubscription factor."""

    async def scenario(app) -> float:
        client = ASGIClient(app)
        await client.invoke("root", "du")  # warm the session
        t0 = time.monotonic()
        sem = asyncio.Semaphore(WORKERS)

        async def one() -> None:
            async with sem:
                resp = await client.invoke("root", "du")
                assert resp.status == 200
        await asyncio.gather(*(one() for _ in range(n)))
        return n / (time.monotonic() - t0)

    with GUFIApp(
        server, max_inflight=WORKERS, queue_limit=n + WORKERS,
        deadline_s=300.0,
    ) as app:
        return asyncio.run(scenario(app))


async def open_loop(app, rate: float, n: int) -> list[dict]:
    """Fire ``n`` requests at ``rate``/s regardless of completions
    (open loop — arrivals do not slow down when the server does).
    Latency is measured from the *scheduled* arrival instant, so
    queue wait is part of it."""
    client = ASGIClient(app)
    await client.invoke("root", "du")  # warm outside the window
    loop = asyncio.get_running_loop()
    t0 = loop.time()

    async def one(i: int) -> dict:
        due = t0 + i / rate
        delay = due - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        start = loop.time()
        resp = await client.invoke("root", "du")
        return {"status": resp.status, "latency": loop.time() - start}

    return list(await asyncio.gather(*(one(i) for i in range(n))))


def summarize(samples: list[dict], elapsed: float) -> dict:
    ok = sorted(s["latency"] for s in samples if s["status"] == 200)
    shed = sum(1 for s in samples if s["status"] == 503)
    statuses: dict[str, int] = {}
    for s in samples:
        statuses[str(s["status"])] = statuses.get(str(s["status"]), 0) + 1
    assert ok, "no request succeeded"

    def pct(p: float) -> float:
        return ok[min(len(ok) - 1, int(p * len(ok)))]

    return {
        "n": len(samples),
        "ok": len(ok),
        "shed": shed,
        "shed_rate": shed / len(samples),
        "statuses": statuses,
        "p50_ms": statistics.median(ok) * 1e3,
        "p95_ms": pct(0.95) * 1e3,
        "p99_ms": pct(0.99) * 1e3,
        "max_ms": ok[-1] * 1e3,
        "throughput_rps": len(ok) / elapsed,
    }


def run_mode(server, rate: float, n: int, controlled: bool) -> dict:
    if controlled:
        app_kwargs = {"queue_limit": 2 * WORKERS}
    else:
        # "unbounded": larger than any queue this run can build
        app_kwargs = {"queue_limit": 10 * n}
    with GUFIApp(
        server, max_inflight=WORKERS, deadline_s=300.0, **app_kwargs
    ) as app:
        t0 = time.monotonic()
        samples = asyncio.run(open_loop(app, rate, n))
        result = summarize(samples, time.monotonic() - t0)
    result["queue_limit"] = app_kwargs["queue_limit"]
    return result


def run_serving_bench(index, n: int) -> dict:
    with GUFIServer(
        index, build_identity(), nthreads=NTHREADS, result_cache_mb=8.0
    ) as server:
        capacity = measure_capacity(server)
        rate = capacity * OVERSUBSCRIPTION
        print(f"capacity {capacity:8.1f} req/s  "
              f"-> open-loop rate {rate:8.1f} req/s (x{OVERSUBSCRIPTION})")
        modes = {}
        for name, controlled in (
            ("no_control", False), ("admission_control", True),
        ):
            modes[name] = run_mode(server, rate, n, controlled)
            m = modes[name]
            print(f"{name:18s} p50 {m['p50_ms']:7.1f}ms  "
                  f"p95 {m['p95_ms']:7.1f}ms  p99 {m['p99_ms']:7.1f}ms  "
                  f"{m['throughput_rps']:7.1f} req/s  "
                  f"shed {m['shed_rate']:5.1%}")
    ctl = modes["admission_control"]
    return {
        "cpus": os.cpu_count(),
        "nthreads": NTHREADS,
        "workers": WORKERS,
        "clients": n,
        "oversubscription": OVERSUBSCRIPTION,
        "capacity_rps": capacity,
        "open_loop_rate_rps": rate,
        "modes": modes,
        "p99_over_p50_controlled": ctl["p99_ms"] / ctl["p50_ms"],
    }


def check_targets(report: dict) -> None:
    ctl = report["modes"]["admission_control"]
    raw = report["modes"]["no_control"]
    # bounded tail: no admitted request waits behind an unbounded queue
    assert report["p99_over_p50_controlled"] <= P99_OVER_P50_LIMIT, (
        f"controlled p99 {ctl['p99_ms']:.1f}ms is "
        f"{report['p99_over_p50_controlled']:.1f}x p50 "
        f"(limit {P99_OVER_P50_LIMIT}x)"
    )
    # queue collapse is real: the uncontrolled tail grows with the
    # backlog and dwarfs the controlled one
    assert raw["p99_ms"] > 2 * ctl["p99_ms"], (
        f"no_control p99 {raw['p99_ms']:.1f}ms did not collapse vs "
        f"controlled {ctl['p99_ms']:.1f}ms"
    )
    # the controlled mode actually shed (it was oversubscribed) and
    # the uncontrolled mode accepted everything
    assert ctl["shed_rate"] > 0.05, "admission control never shed"
    assert raw["shed"] == 0, "the 'unbounded' queue shed requests"


def prometheus_dump(index) -> str:
    """Deterministic traffic exercising every ``gufi_serve_*`` series,
    returned as Prometheus text (CI greps the names)."""
    from repro.obs.export import to_prometheus

    async def traffic() -> None:
        with GUFIServer(
            index, build_identity(), nthreads=NTHREADS
        ) as server:
            # success + request_seconds + queue_depth
            with GUFIApp(server, max_inflight=2, queue_limit=4) as app:
                client = ASGIClient(app)
                assert (await client.invoke("root", "du")).status == 200
                # rejected{auth}
                assert (await client.invoke("ghost", "du")).status == 401
                # timeouts_total: a sub-millisecond deadline expires
                # while the walk is underway (retry the race away)
                for _ in range(50):
                    resp = await client.invoke(
                        "root", "du", deadline_ms=0.2
                    )
                    if resp.status == 504:
                        break
                else:
                    raise AssertionError("deadline never tripped")
            # rejected{rate_limit}
            with GUFIApp(
                server, max_inflight=2, queue_limit=4,
                tenant_qps=1.0, tenant_burst=1.0,
            ) as app:
                client = ASGIClient(app)
                statuses = {
                    (await client.invoke("alice", "du")).status
                    for _ in range(3)
                }
                assert 429 in statuses
            # shed_total{queue_full}
            with GUFIApp(server, max_inflight=1, queue_limit=0) as app:
                client = ASGIClient(app)
                results = await asyncio.gather(
                    *(client.invoke("root", "du") for _ in range(4))
                )
                assert 503 in {r.status for r in results}

    with obs.enabled(metrics=True):
        asyncio.run(traffic())
        text = to_prometheus(obs.snapshot())
    for metric in (
        "gufi_serve_requests_total",
        "gufi_serve_rejected_total",
        "gufi_serve_shed_total",
        "gufi_serve_timeouts_total",
        "gufi_serve_queue_depth",
        "gufi_serve_request_seconds",
    ):
        assert metric in text, f"missing metric: {metric}"
    return text


def save_report(report: dict) -> Path:
    return save_bench_report("serving", report)


def bench_serving(tmp_path_factory):
    """pytest entry point (collected by the bench_* convention)."""
    index = build_bench_index(tmp_path_factory.mktemp("serving"))
    report = run_serving_bench(index, N_REQUESTS)
    print(f"saved {save_report(report)}")
    check_targets(report)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down run without the latency assertions (CI "
        "machines are noisy); verifies the recorded BENCH_serving.json "
        "exists and prints the Prometheus dump CI greps",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="gufi_serving_") as td:
        index = build_bench_index(Path(td))
        if args.smoke:
            baseline = load_bench_baseline("serving")
            assert baseline is not None, "no recorded BENCH_serving.json"
            report = run_serving_bench(index, N_SMOKE)
            # structural sanity only: oversubscription really shed,
            # the unbounded queue really accepted everything
            assert report["modes"]["admission_control"]["shed"] > 0
            assert report["modes"]["no_control"]["shed"] == 0
            print(prometheus_dump(index))
            print("smoke ok: serving stack + metric names intact",
                  file=sys.stderr)
        else:
            report = run_serving_bench(index, N_REQUESTS)
            check_targets(report)
            print(f"saved {save_report(report)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
