"""Microbenchmark for the materialized query-result cache.

Measures repeated queries two ways on a dataset-2-scaled index:

* **uncached** — one persistent session (warm DirMeta cache, pooled
  connections, registered SQL functions) *without* a result cache:
  the best the warm path could do before materialization, paying the
  full permission-gated traversal every repetition;
* **cached** — the same session with a :class:`ResultCache`: the
  first run captures, every later repetition is an O(validity-token)
  revalidation plus replay instead of an O(traversal) walk.

Every case asserts byte-identical rows between the two modes; the
repeated selective queries must be >=5x faster cached. ``--smoke``
compares the measured ratios against the recorded
``BENCH_result_cache.json`` baseline instead of overwriting it, and
prints a Prometheus dump carrying the ``gufi_result_cache_*`` metric
names CI greps for.

Run standalone:  PYTHONPATH=src python benchmarks/bench_result_cache.py
Run via pytest:  pytest benchmarks/bench_result_cache.py
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _bench_helpers import (
    DS2_SCALE,
    NTHREADS,
    load_bench_baseline,
    save_bench_report,
)

from repro import obs
from repro.core.build import BuildOptions, build_from_stanzas
from repro.core.engine import ResultCache
from repro.core.index import GUFIIndex
from repro.core.query import (
    GUFIQuery,
    Q1_LIST_PATHS,
    Q3_DU_SUMMARIES,
    QuerySpec,
)
from repro.core.tsummary import build_tsummary
from repro.fs.permissions import Credentials
from repro.gen.datasets import dataset2
from repro.scan.scanners import TreeWalkScanner

REPS = 7

#: repeated selective queries must be at least this much faster cached
SPEEDUP_TARGET = 5.0

#: --smoke: a speedup may fall at most this fraction below the
#: recorded baseline ratio before it counts as a regression
SPEEDUP_TOLERANCE = 0.10

#: --smoke: re-measure still-failing cases this many times before
#: declaring a regression — a real one fails every attempt
SMOKE_RETRIES = 2

#: a selective scan: most directories contribute nothing, but the
#: traversal still has to prove that for every one of them
SELECTIVE_SPEC = QuerySpec(
    E="SELECT rpath(dname, d_isroot, name), size FROM vrpentries "
    "WHERE size >= 900000000"
)


def _times(fn, reps: int = REPS) -> list[float]:
    out = []
    for _ in range(reps):
        t0 = time.monotonic()
        fn()
        out.append(time.monotonic() - t0)
    return out


def _measure_case(index_root, spec, creds, start: str, reps: int = REPS) -> dict:
    """Median uncached-vs-cached repetition times for one (query, user),
    both on fully warm sessions, plus the identical-rows proof."""
    idx = GUFIIndex.open(index_root)
    q = GUFIQuery(idx, creds=creds, nthreads=NTHREADS)
    try:
        q.run(spec, start)  # untimed: warm pool + DirMeta cache
        uncached = _times(lambda: q.run(spec, start), reps)
        uncached_rows = sorted(q.run(spec, start).rows)
    finally:
        q.close()

    idx = GUFIIndex.open(index_root)
    cache = ResultCache()
    q = GUFIQuery(idx, creds=creds, nthreads=NTHREADS, result_cache=cache)
    try:
        q.run(spec, start)  # warm pool (miss)
        first = q.run(spec, start)  # capture validated: a hit
        assert first.cached, "second run did not hit the result cache"
        cached = _times(lambda: q.run(spec, start), reps)
        final = q.run(spec, start)
        assert final.cached
        cached_rows = sorted(final.rows)
        stats = cache.stats()
    finally:
        q.close()

    assert cached_rows == uncached_rows, (
        "cached rows diverged from the uncached traversal"
    )

    uncached_med = statistics.median(uncached)
    cached_med = statistics.median(cached)
    return {
        "uncached_median_s": uncached_med,
        "uncached_min_s": min(uncached),
        "cached_median_s": cached_med,
        "cached_min_s": min(cached),
        "speedup": uncached_med / cached_med if cached_med > 0 else float("inf"),
        # min-over-min: far less run-to-run noise for sub-ms replays;
        # the --smoke baseline guard compares this ratio
        "speedup_min": min(uncached) / min(cached)
        if min(cached) > 0
        else float("inf"),
        "rows": len(cached_rows),
        "reps": reps,
        "cache": stats,
    }


def build_bench_index(tmp_root: Path):
    """dataset-2-shaped namespace -> non-rolled index + root tsummary."""
    ns = dataset2(scale=DS2_SCALE)
    stanzas = TreeWalkScanner(ns.tree, nthreads=NTHREADS).scan("/").stanzas
    built = build_from_stanzas(
        stanzas, tmp_root / "idx", BuildOptions(nthreads=NTHREADS)
    )
    build_tsummary(built.index, "/")
    return ns, built.index


def result_cache_cases(ns) -> dict:
    """name -> (spec, creds, start, selective)."""
    root = Credentials(uid=0, gid=0)
    area, policy = next(iter(sorted(ns.area_roots.items())))
    user = Credentials(uid=policy.uid, gid=policy.gid)

    return {
        # selective scans: tiny result, full traversal — replay wins big
        "selective_root": (SELECTIVE_SPEC, root, "/", True),
        "selective_user": (SELECTIVE_SPEC, user, "/", True),
        # aggregate: J/G reduction repeated verbatim (canned dashboards)
        "du_root": (Q3_DU_SUMMARIES, root, "/", True),
        # full listing: large result set, replay throughput recorded
        # but not targeted (row volume dominates both modes)
        "q1_paths_root": (Q1_LIST_PATHS, root, "/", False),
    }


def run_result_cache_bench(ns, index) -> dict:
    cases = result_cache_cases(ns)
    results = {}
    for name, (spec, creds, start, selective) in cases.items():
        results[name] = _measure_case(index.root, spec, creds, start)
        results[name]["selective"] = selective
        print(
            f"{name:18s} uncached {results[name]['uncached_median_s'] * 1e3:8.2f}ms"
            f"  cached {results[name]['cached_median_s'] * 1e3:8.2f}ms"
            f"  speedup {results[name]['speedup']:7.2f}x"
        )

    return {
        "scale": DS2_SCALE,
        "nthreads": NTHREADS,
        "namespace": {"dirs": len(ns.dirs), "entries": len(ns.files)},
        "cases": results,
    }


def check_targets(report: dict) -> None:
    for name, case in report["cases"].items():
        if case["selective"]:
            assert case["speedup_min"] >= SPEEDUP_TARGET, (
                f"{name}: replay only {case['speedup_min']:.2f}x faster "
                f"than the uncached warm path (target {SPEEDUP_TARGET}x)"
            )
        else:
            # replay may never lose to re-traversal, even on row-heavy
            # listings where emit volume dominates
            assert case["speedup_min"] >= 1.0, (
                f"{name}: replay slower than the walk "
                f"({case['speedup_min']:.2f}x)"
            )


def baseline_failures(
    report: dict, baseline: dict, tolerance: float = SPEEDUP_TOLERANCE
) -> dict:
    failures = {}
    for name, case in report["cases"].items():
        base = baseline["cases"].get(name)
        if base is None:
            continue
        floor = base["speedup_min"] * (1.0 - tolerance)
        if case["speedup_min"] < floor:
            failures[name] = (
                f"{name}: speedup_min {case['speedup_min']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base['speedup_min']:.2f}x "
                f"- {tolerance:.0%})"
            )
    return failures


def smoke_check(ns, index, report, baseline, tolerance) -> None:
    failures = baseline_failures(report, baseline, tolerance)
    cases = result_cache_cases(ns)
    for attempt in range(SMOKE_RETRIES):
        if not failures:
            break
        for name in list(failures):
            spec, creds, start, selective = cases[name]
            fresh = _measure_case(index.root, spec, creds, start, reps=REPS * 3)
            fresh["selective"] = selective
            if fresh["speedup_min"] > report["cases"][name]["speedup_min"]:
                report["cases"][name] = fresh
        print(f"retry {attempt + 1}: re-measured {sorted(failures)}")
        failures = baseline_failures(report, baseline, tolerance)
    assert not failures, (
        "result-cache regression vs recorded baseline:\n  "
        + "\n  ".join(failures[name] for name in sorted(failures))
    )


def prometheus_dump(tmp_root: Path) -> str:
    """Exercise every result-cache metric with observability enabled
    and return the Prometheus rendering (CI greps the names)."""
    from repro.obs.export import to_prometheus

    sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))
    from conftest import build_demo_tree

    from repro.core.build import dir2index

    tree = build_demo_tree()
    index = dir2index(
        tree, tmp_root / "obs_idx", opts=BuildOptions(nthreads=NTHREADS)
    ).index
    with obs.enabled(metrics=True):
        cache = ResultCache(max_entries=1)
        with GUFIQuery(index, nthreads=NTHREADS, result_cache=cache) as q:
            q.run(Q1_LIST_PATHS, "/public")  # miss + store
            assert q.run(Q1_LIST_PATHS, "/public").cached  # hit (+validate)
            index.invalidate_cache("/public")  # push invalidation
            q.run(Q1_LIST_PATHS, "/public")  # re-capture
            q.run(Q1_LIST_PATHS, "/home")  # max_entries=1: eviction
        text = to_prometheus(obs.snapshot())
    for metric in (
        "gufi_result_cache_hits_total",
        "gufi_result_cache_misses_total",
        "gufi_result_cache_invalidations_total",
        "gufi_result_cache_evictions_total",
        "gufi_result_cache_validate_seconds",
    ):
        assert metric in text, f"missing metric: {metric}"
    return text


def save_report(report: dict) -> Path:
    return save_bench_report("result_cache", report)


def bench_result_cache(tmp_path_factory):
    """pytest entry point (collected by the bench_* convention)."""
    ns, index = build_bench_index(tmp_path_factory.mktemp("rcache"))
    report = run_result_cache_bench(ns, index)
    print(f"saved {save_report(report)}")
    check_targets(report)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="compare against the recorded BENCH_result_cache.json "
        "instead of overwriting it, and print the Prometheus dump "
        "(CI regression + metric-name guard)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=SPEEDUP_TOLERANCE,
        help="allowed fractional drop below baseline speedups (--smoke)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="gufi_rcache_") as td:
        ns, index = build_bench_index(Path(td))
        report = run_result_cache_bench(ns, index)
        check_targets(report)
        if args.smoke:
            baseline = load_bench_baseline("result_cache")
            assert baseline is not None, "no recorded BENCH_result_cache.json"
            smoke_check(ns, index, report, baseline, args.tolerance)
            print(prometheus_dump(Path(td)))
            print(
                "smoke ok: replay ratios within tolerance of baseline",
                file=sys.stderr,
            )
        else:
            print(f"saved {save_report(report)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
