"""Ablation — per-user/per-group summary records (§III-B).

"Both summary and tsummary tables can have overall, per-user, and
per-group records thus making per-user or per-group summary queries
extremely efficient." This bench quantifies the claim: per-user space
usage computed three ways —

* from per-user ``summary`` records (rectype=1): one small row per
  (directory, user);
* from ``pentries`` with a GROUP BY: touches every entry row;
* from a per-user ``tsummary`` record: a single row at the root.
"""

from __future__ import annotations

import pytest

from repro.core.build import BuildOptions, build_from_stanzas
from repro.core.query import GUFIQuery, QuerySpec
from repro.core.tsummary import build_tsummary

from _bench_helpers import NTHREADS, save_table
from repro.harness.results import ResultTable

BY_SUMMARY = QuerySpec(
    I="CREATE TABLE usage (uid INTEGER, bytes INTEGER)",
    S="INSERT INTO usage SELECT uid, totsize FROM summary WHERE rectype = 1",
    J="INSERT INTO aggregate.usage SELECT uid, TOTAL(bytes) FROM usage "
      "GROUP BY uid",
    G="SELECT uid, TOTAL(bytes) FROM usage GROUP BY uid",
)

BY_ENTRIES = QuerySpec(
    I="CREATE TABLE usage (uid INTEGER, bytes INTEGER)",
    E="INSERT INTO usage SELECT uid, TOTAL(size) FROM pentries GROUP BY uid",
    J="INSERT INTO aggregate.usage SELECT uid, TOTAL(bytes) FROM usage "
      "GROUP BY uid",
    G="SELECT uid, TOTAL(bytes) FROM usage GROUP BY uid",
)

BY_TSUMMARY = QuerySpec(
    T="SELECT uid, totsize FROM tsummary WHERE rectype = 1"
)


@pytest.fixture(scope="module")
def pug_index(ds2_stanzas, tmp_path_factory):
    """Index built WITH per-user/per-group summary records."""
    _, stanzas = ds2_stanzas
    root = tmp_path_factory.mktemp("pugidx")
    built = build_from_stanzas(
        stanzas, root / "idx",
        BuildOptions(nthreads=NTHREADS, per_user_group_summaries=True),
    )
    build_tsummary(built.index, "/")
    return built.index


def _usage(index, spec):
    rows = GUFIQuery(index, nthreads=NTHREADS).run(spec).rows
    return {int(u): int(b or 0) for u, b in rows}


def bench_per_user_via_summary_records(benchmark, pug_index):
    usage = benchmark(lambda: _usage(pug_index, BY_SUMMARY))
    assert usage


def bench_per_user_via_entries_groupby(benchmark, pug_index):
    usage = benchmark(lambda: _usage(pug_index, BY_ENTRIES))
    # all three methods must agree (cross-checked here once)
    assert usage == _usage(pug_index, BY_SUMMARY)
    table = ResultTable(
        title="Per-user usage agreement across methods",
        columns=["method", "users", "total bytes"],
    )
    for name, u in (
        ("summary rectype=1", _usage(pug_index, BY_SUMMARY)),
        ("pentries GROUP BY", usage),
        ("tsummary rectype=1", _usage(pug_index, BY_TSUMMARY)),
    ):
        table.add(name, len(u), sum(u.values()))
    save_table("summary_ablation", table)


def bench_per_user_via_tsummary(benchmark, pug_index):
    """One database read answers per-user usage for the whole tree."""
    result = benchmark(
        lambda: GUFIQuery(pug_index, nthreads=NTHREADS).run(BY_TSUMMARY)
    )
    assert result.dirs_visited == 1
