"""§III-A4 text claim — index ingest rates (the paper's commodity
server creates 1M directories-with-databases in ~18s and inserts 100M
rows in <120s; this sandbox is orders of magnitude slower per syscall,
so the table reports measured rates plus the extrapolations)."""

from __future__ import annotations

from repro.harness import ingest_rate

from _bench_helpers import NTHREADS, save_table


def bench_ingest_rate_table(benchmark):
    table = benchmark.pedantic(
        lambda: ingest_rate(n_dirs=400, files_per_dir=40, nthreads=NTHREADS),
        rounds=1, iterations=1,
    )
    save_table("ingest_rate", table)
    assert table.rows[0][3] > 0  # dirs/s
