"""Shared constants and result capture for the benchmarks."""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: canonical bench artifacts also land at the repository root — CI
#: fails a smoke run whose ``BENCH_*.json`` is missing from here
REPO_ROOT = Path(__file__).parent.parent

#: this sandbox serialises syscalls across threads, so wall-clock
#: benches use small pools; the modelled-device figures are pool-size
#: independent (see DESIGN.md).
NTHREADS = 2

#: dataset-2-shaped namespace scale for the macro benches (Figs 8-10).
DS2_SCALE = 0.0003


def save_bench_report(name: str, report: dict) -> Path:
    """Write ``BENCH_<name>.json`` to both homes: the repo root (the
    canonical artifact — CI checks it exists after every smoke run)
    and ``benchmarks/results/`` (alongside the human-readable tables).
    Returns the canonical (root) path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(report, indent=2) + "\n"
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(text)
    out = REPO_ROOT / f"BENCH_{name}.json"
    out.write_text(text)
    return out


def load_bench_baseline(name: str) -> dict | None:
    """Read a recorded ``BENCH_<name>.json``, preferring the canonical
    repo-root copy and falling back to ``benchmarks/results/``."""
    for path in (
        REPO_ROOT / f"BENCH_{name}.json",
        RESULTS_DIR / f"BENCH_{name}.json",
    ):
        if path.exists():
            return json.loads(path.read_text())
    return None


def save_table(name: str, *tables) -> None:
    """Persist rendered tables (txt for humans, csv for plotting) and
    echo them to the terminal."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n\n".join(t.render() for t in tables)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    for i, t in enumerate(tables):
        suffix = "" if len(tables) == 1 else f"_{i}"
        (RESULTS_DIR / f"{name}{suffix}.csv").write_text(t.to_csv())
    print()
    print(text)
