"""Shared constants and result capture for the benchmarks."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: this sandbox serialises syscalls across threads, so wall-clock
#: benches use small pools; the modelled-device figures are pool-size
#: independent (see DESIGN.md).
NTHREADS = 2

#: dataset-2-shaped namespace scale for the macro benches (Figs 8-10).
DS2_SCALE = 0.0003


def save_table(name: str, *tables) -> None:
    """Persist rendered tables (txt for humans, csv for plotting) and
    echo them to the terminal."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n\n".join(t.render() for t in tables)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    for i, t in enumerate(tables):
        suffix = "" if len(tables) == 1 else f"_{i}"
        (RESULTS_DIR / f"{name}{suffix}.csv").write_text(t.to_csv())
    print()
    print(text)
