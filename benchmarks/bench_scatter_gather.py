"""Scatter-gather scaling: wall-clock speedup versus worker processes.

The thread-parallel engine is GIL-bound, so one process tops out near
one core of useful work. This bench measures the multi-process path
(``processes=N``) against the single-process baseline on a
dataset-2-shaped index, for a full-scan query (Q1) and an aggregated
J/G query (Q3) — asserting byte-identical rows at every worker count
before any timing claim is made.

Honesty matters more than the headline number: the report records the
CPUs this process may actually run on (``cpus``). The >=2.5x-at-4-
workers target is only asserted when four cores are really available —
on a one-core sandbox the measured speedup is what it is (about 1x
minus fork overhead) and is recorded as such.

Run standalone:  PYTHONPATH=src python benchmarks/bench_scatter_gather.py
CI smoke:        PYTHONPATH=src python benchmarks/bench_scatter_gather.py --smoke
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _bench_helpers import DS2_SCALE, NTHREADS, save_bench_report

from repro import obs
from repro.core.build import BuildOptions, dir2index
from repro.core.engine import QueryEngine
from repro.core.query import Q1_LIST_PATHS, Q3_DU_SUMMARIES
from repro.gen.datasets import dataset2
from repro.scan.walker import default_worker_count

REPS = 3
WORKER_COUNTS = (1, 2, 4)
#: total thread budget per configuration (split across workers)
BENCH_NTHREADS = 4
#: required speedup at 4 workers — asserted only when 4 cores exist
SPEEDUP_TARGET = 2.5
SMOKE_SCALE = 0.0002


def build_bench_index(tmp_root: Path, scale: float):
    ns = dataset2(scale=scale)
    built = dir2index(
        ns.tree, tmp_root / "idx", opts=BuildOptions(nthreads=NTHREADS)
    )
    return ns, built.index


def _run_rows(index, spec, processes: int) -> tuple[list, list[float]]:
    """Sorted rows plus per-repetition wall times at one worker count."""
    times: list[float] = []
    with QueryEngine(
        index, nthreads=BENCH_NTHREADS, processes=processes
    ) as q:
        q.run(spec)  # untimed warm-up: cache + pool populated
        rows = None
        for _ in range(REPS):
            t0 = time.monotonic()
            result = q.run(spec)
            times.append(time.monotonic() - t0)
            rows = sorted(result.rows)
    return rows, times


def run_scaling_bench(index, query_name: str, spec) -> dict:
    """One query across every worker count; identical rows asserted."""
    baseline_rows = None
    baseline_median = None
    workers: dict[str, dict] = {}
    for procs in WORKER_COUNTS:
        rows, times = _run_rows(index, spec, procs)
        if baseline_rows is None:
            baseline_rows = rows
            baseline_median = statistics.median(times)
        assert rows == baseline_rows, (
            f"{query_name}: rows diverge at processes={procs}"
        )
        med = statistics.median(times)
        workers[str(procs)] = {
            "median_s": med,
            "min_s": min(times),
            "speedup": baseline_median / med if med > 0 else float("inf"),
        }
        print(
            f"{query_name:16s} processes={procs}  median "
            f"{med * 1e3:8.2f}ms  speedup "
            f"{workers[str(procs)]['speedup']:5.2f}x"
        )
    return {"identical_rows": True, "workers": workers}


def scatter_engaged(index) -> dict:
    """Prove the multi-process path actually ran (not the narrow-tree
    fallback): one metered run must record a scatter fan-out."""
    with obs.enabled(metrics=True):
        with QueryEngine(
            index, nthreads=BENCH_NTHREADS, processes=max(WORKER_COUNTS)
        ) as q:
            q.run(Q1_LIST_PATHS)
        snap = obs.snapshot()
    runs = snap.counter("gufi_scatter_runs_total")
    shards = snap.counter("gufi_scatter_shards_total")
    assert runs >= 1, "scatter never engaged: tree fell back to 1 process"
    assert shards >= 2
    return {"runs": runs, "shards": shards}


def run_bench(index, scale: float) -> dict:
    report = {
        "scale": scale,
        "cpus": default_worker_count(),
        "nthreads": BENCH_NTHREADS,
        "reps": REPS,
        "scatter": scatter_engaged(index),
        "queries": {
            "q1_list_paths": run_scaling_bench(
                index, "q1_list_paths", Q1_LIST_PATHS
            ),
            "q3_du_summaries": run_scaling_bench(
                index, "q3_du_summaries", Q3_DU_SUMMARIES
            ),
        },
    }
    return report


def check_targets(report: dict) -> None:
    cpus = report["cpus"]
    four = str(max(WORKER_COUNTS))
    for name, q in report["queries"].items():
        assert q["identical_rows"]
        speedup = q["workers"][four]["speedup"]
        if cpus >= max(WORKER_COUNTS):
            assert speedup >= SPEEDUP_TARGET, (
                f"{name}: {speedup:.2f}x at {four} workers "
                f"(target {SPEEDUP_TARGET}x on {cpus} cpus)"
            )
        else:
            print(
                f"{name}: {speedup:.2f}x at {four} workers on {cpus} "
                f"cpu(s) — {SPEEDUP_TARGET}x target not asserted"
            )


def save_report(report: dict) -> Path:
    return save_bench_report("scatter_gather", report)


def bench_scatter_gather(tmp_path_factory):
    """pytest entry point (collected by the bench_* convention)."""
    _, index = build_bench_index(
        tmp_path_factory.mktemp("scatter"), SMOKE_SCALE
    )
    report = run_bench(index, SMOKE_SCALE)
    check_targets(report)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small index, correctness-only: identical rows at every "
        "worker count and a real scatter fan-out; no JSON rewrite",
    )
    args = parser.parse_args(argv)

    scale = SMOKE_SCALE if args.smoke else DS2_SCALE
    with tempfile.TemporaryDirectory(prefix="gufi_scatter_") as td:
        _, index = build_bench_index(Path(td), scale)
        report = run_bench(index, scale)
        check_targets(report)
        if args.smoke:
            print("smoke ok: identical rows at every worker count, "
                  f"{int(report['scatter']['shards'])} shards engaged")
        else:
            print(f"saved {save_report(report)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
