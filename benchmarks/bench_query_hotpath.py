"""Microbenchmark for the persistent-session hot path.

Measures repeated queries two ways on a dataset-2-scaled index:

* **cold** — a fresh :class:`GUFIIndex` handle and a fresh
  :class:`GUFIQuery` per repetition (empty DirMeta cache, new scratch
  database, new connections, SQL functions re-registered), which is
  what every CLI invocation paid before sessions existed;
* **warm** — one session reused across repetitions, the tentpole's
  intended mode.

Covered: Q1-Q4 as root, Q1 as an unprivileged user, and two "small"
queries where fixed setup dominates the work — Q4 (tsummary prunes at
the root, one directory touched) and Q1 over a deep leaf subtree. The
target from the issue: >=3x warm-over-cold on the repeated small
queries and no regression on cold full scans (cold medians are
recorded in ``BENCH_query_hotpath.json`` so later runs can compare).

Run standalone:  PYTHONPATH=src python benchmarks/bench_query_hotpath.py
Run via pytest:  pytest benchmarks/bench_query_hotpath.py
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _bench_helpers import (
    DS2_SCALE,
    NTHREADS,
    load_bench_baseline,
    save_bench_report,
)

from repro.core.build import BuildOptions, build_from_stanzas
from repro.core.index import GUFIIndex
from repro.core.query import (
    GUFIQuery,
    Q1_LIST_NAMES,
    Q2_DIR_SIZES,
    Q3_DU_SUMMARIES,
    Q4_DU_TSUMMARY,
)
from repro.core.tsummary import build_tsummary
from repro.fs.permissions import Credentials
from repro.gen.datasets import dataset2
from repro.scan.scanners import TreeWalkScanner

REPS = 7

#: repeated small queries must be at least this much faster warm
SMALL_QUERY_TARGET = 3.0

#: --smoke: a small-query speedup may fall at most this fraction below
#: the recorded baseline ratio before it counts as a regression
SPEEDUP_TOLERANCE = 0.10

#: --smoke: re-measure still-failing small cases this many times (with
#: extra repetitions) before declaring a regression — a real one fails
#: every attempt, scheduler noise does not
SMOKE_RETRIES = 2


def _times(fn, reps: int = REPS) -> list[float]:
    out = []
    for _ in range(reps):
        t0 = time.monotonic()
        fn()
        out.append(time.monotonic() - t0)
    return out


def _measure_case(
    index_root, spec, creds, start: str, single: bool, reps: int = REPS
) -> dict:
    """Median cold-vs-warm repetition times for one (query, user).

    ``single`` uses :meth:`GUFIQuery.run_single` — the per-directory
    API a repeated point query hits; otherwise the parallel walker
    (whose per-run thread spawn is paid warm and cold alike).
    """

    def exec_query(q):
        if single:
            q.run_single(spec, start)
        else:
            q.run(spec, start)

    def cold_once():
        idx = GUFIIndex.open(index_root)
        q = GUFIQuery(idx, creds=creds, nthreads=NTHREADS)
        try:
            exec_query(q)
        finally:
            q.close()

    cold = _times(cold_once, reps)

    idx = GUFIIndex.open(index_root)
    q = GUFIQuery(idx, creds=creds, nthreads=NTHREADS)
    try:
        exec_query(q)  # untimed warm-up populates pool + caches
        warm = _times(lambda: exec_query(q), reps)
        cache = dict(idx.cache.stats())
    finally:
        q.close()

    cold_med = statistics.median(cold)
    warm_med = statistics.median(warm)
    return {
        "cold_median_s": cold_med,
        "cold_min_s": min(cold),
        "warm_median_s": warm_med,
        "warm_min_s": min(warm),
        "speedup": cold_med / warm_med if warm_med > 0 else float("inf"),
        # min-over-min is far less noisy than median-over-median for
        # sub-millisecond queries; the --smoke baseline guard uses it
        "speedup_min": min(cold) / min(warm) if min(warm) > 0 else float("inf"),
        "reps": reps,
        "cache": cache,
    }


def build_bench_index(tmp_root: Path):
    """dataset-2-shaped namespace -> non-rolled index + root tsummary."""
    ns = dataset2(scale=DS2_SCALE)
    stanzas = TreeWalkScanner(ns.tree, nthreads=NTHREADS).scan("/").stanzas
    built = build_from_stanzas(
        stanzas, tmp_root / "idx", BuildOptions(nthreads=NTHREADS)
    )
    build_tsummary(built.index, "/")
    return ns, built.index


def hotpath_cases(ns) -> dict:
    """name -> (spec, creds, start, small_query, single)."""
    root = Credentials(uid=0, gid=0)
    area, policy = next(iter(sorted(ns.area_roots.items())))
    user = Credentials(uid=policy.uid, gid=policy.gid)
    leaf = max(ns.dirs, key=lambda d: (d.count("/"), d))

    return {
        # full scans: every visible directory is attached either way,
        # so warm wins only the fixed setup — must at least not lose
        "q1_root_full": (Q1_LIST_NAMES, root, "/", False, False),
        "q2_root_full": (Q2_DIR_SIZES, root, "/", False, False),
        "q3_root_full": (Q3_DU_SUMMARIES, root, "/", False, False),
        "q1_user_full": (Q1_LIST_NAMES, user, "/", False, False),
        "q4_root_tsummary": (Q4_DU_TSUMMARY, root, "/", False, False),
        # small queries: fixed setup dominates, sessions must win big
        "q4_root_single": (Q4_DU_TSUMMARY, root, "/", True, True),
        "q1_leaf_subtree": (Q1_LIST_NAMES, root, leaf, True, False),
    }


def run_hotpath_bench(ns, index) -> dict:
    cases = hotpath_cases(ns)
    leaf = cases["q1_leaf_subtree"][2]
    user = cases["q1_user_full"][1]

    results = {}
    for name, (spec, creds, start, small, single) in cases.items():
        results[name] = _measure_case(index.root, spec, creds, start, single)
        results[name]["small_query"] = small
        print(
            f"{name:20s} cold {results[name]['cold_median_s'] * 1e3:8.2f}ms"
            f"  warm {results[name]['warm_median_s'] * 1e3:8.2f}ms"
            f"  speedup {results[name]['speedup']:6.2f}x"
        )

    return {
        "scale": DS2_SCALE,
        "nthreads": NTHREADS,
        "namespace": {
            "dirs": len(ns.dirs),
            "entries": len(ns.files),
            "leaf": leaf,
            "user_uid": user.uid,
        },
        "cases": results,
    }


def check_targets(report: dict) -> None:
    for name, case in report["cases"].items():
        if case["small_query"]:
            assert case["speedup"] >= SMALL_QUERY_TARGET, (
                f"{name}: warm sessions only {case['speedup']:.2f}x faster "
                f"(target {SMALL_QUERY_TARGET}x)"
            )
        else:
            # warm full scans may not regress past noise: same walk,
            # minus setup — anything slower means the pool leaks work
            assert case["warm_median_s"] <= case["cold_median_s"] * 1.25, (
                f"{name}: warm {case['warm_median_s']:.4f}s vs "
                f"cold {case['cold_median_s']:.4f}s"
            )


def baseline_failures(
    report: dict, baseline: dict, tolerance: float = SPEEDUP_TOLERANCE
) -> dict:
    """Warm-path guard: the repeated-small-query speedup ratios must
    stay within ``tolerance`` of the recorded baseline ratios. The
    comparison uses the min-over-min ratio (``speedup_min``): medians
    of sub-millisecond repetitions swing far more run-to-run than best
    times do, and a guard that trips on scheduler noise is useless.
    Full scans are covered by :func:`check_targets` (warm may not lose
    to cold past noise); their ratios hover near 1x.

    Returns ``{case name: failure message}`` for cases below the floor.
    """
    failures = {}
    for name, case in report["cases"].items():
        base = baseline.get("cases", {}).get(name)
        if base is None or not case.get("small_query"):
            continue
        got = case.get("speedup_min", case["speedup"])
        ref = base.get("speedup_min", base["speedup"])
        floor = ref * (1.0 - tolerance)
        if got < floor:
            failures[name] = (
                f"{name}: {got:.2f}x < {floor:.2f}x "
                f"(recorded baseline {ref:.2f}x)"
            )
        else:
            print(
                f"{name:20s} speedup_min {got:6.2f}x >= "
                f"{floor:.2f}x floor (baseline {ref:.2f}x) ok"
            )
    return failures


def smoke_check(ns, index, report: dict, baseline: dict, tolerance: float) -> None:
    """Assert no warm-path regression, re-measuring failing cases up
    to :data:`SMOKE_RETRIES` times (with triple the repetitions) so one
    unlucky scheduling window cannot fail CI — a genuine regression
    stays below the floor on every attempt."""
    failures = baseline_failures(report, baseline, tolerance)
    for attempt in range(SMOKE_RETRIES):
        if not failures:
            break
        cases = hotpath_cases(ns)
        for name in failures:
            spec, creds, start, small, single = cases[name]
            fresh = _measure_case(
                index.root, spec, creds, start, single, reps=REPS * 3
            )
            fresh["small_query"] = small
            if fresh["speedup_min"] > report["cases"][name]["speedup_min"]:
                report["cases"][name] = fresh
        print(f"retry {attempt + 1}: re-measured {sorted(failures)}")
        failures = baseline_failures(report, baseline, tolerance)
    assert not failures, (
        "warm-path regression vs recorded baseline:\n  "
        + "\n  ".join(failures[name] for name in sorted(failures))
    )


def save_report(report: dict) -> Path:
    return save_bench_report("query_hotpath", report)


def bench_query_hotpath(tmp_path_factory):
    """pytest entry point (collected by the bench_* convention)."""
    ns, index = build_bench_index(tmp_path_factory.mktemp("hotpath"))
    report = run_hotpath_bench(ns, index)
    print(f"saved {save_report(report)}")
    check_targets(report)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="compare against the recorded BENCH_query_hotpath.json "
        "instead of overwriting it (CI regression guard)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=SPEEDUP_TOLERANCE,
        help="allowed fractional drop below baseline speedups (--smoke)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="gufi_hotpath_") as td:
        ns, index = build_bench_index(Path(td))
        report = run_hotpath_bench(ns, index)
        check_targets(report)
        if args.smoke:
            baseline = load_bench_baseline("query_hotpath")
            assert baseline is not None, "no recorded BENCH_query_hotpath.json"
            smoke_check(ns, index, report, baseline, args.tolerance)
            print("smoke ok: warm-path ratios within tolerance of baseline")
        else:
            print(f"saved {save_report(report)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
