"""Figure 8 — rollup-limit tradeoffs.

8a: rollup time and simple-query time per rollup limit (NONE … MAX);
8b: visible database count and bytes/entry, with Brindexer reference;
8c: per-thread completion times (effective concurrency).

Expected shapes: NONE has the slowest query (most fixed overhead to
read); a moderate limit minimises query time; bytes/entry falls with
the limit; MAX's completion profile is tail-dominated by one large
database while Brindexer's shards are imbalanced by large directories.
"""

from __future__ import annotations

from repro.core.build import BuildOptions, build_from_stanzas
from repro.core.query import GUFIQuery, QuerySpec
from repro.core.rollup import rollup
from repro.harness import fig8
from repro.harness.results import ResultTable

from _bench_helpers import DS2_SCALE, NTHREADS, save_table

SIMPLE_QUERY = QuerySpec(
    S="SELECT uid FROM summary", E="SELECT uid FROM pentries"
)


def bench_fig8_sweep(benchmark):
    def run():
        return fig8(scale=DS2_SCALE, nthreads=NTHREADS, n_shards=64)

    table, fig8c, completions = benchmark.pedantic(run, rounds=1, iterations=1)
    # render the 8c completion series the paper plots
    series = ResultTable(
        title="Fig 8c: thread completion offsets (s)",
        columns=["config", "completions"],
    )
    for label, times in completions.items():
        series.add(label, " ".join(f"{t:.2f}" for t in times))
    save_table("fig8", table, fig8c, series)
    from repro.harness.results import ascii_chart
    from _bench_helpers import RESULTS_DIR

    chart = ascii_chart(
        "Fig 8c: per-thread completion offsets (s)",
        {
            label: list(enumerate(times))
            for label, times in completions.items()
        },
    )
    (RESULTS_DIR / "fig8c_chart.txt").write_text(chart + "\n")
    print(); print(chart)
    q = dict(zip(table.column("config"), table.column("query (s)")))
    assert q["MAX"] < q["NONE"]  # rollup pays off on this workload


def bench_fig8_rollup_process(benchmark, ds2_stanzas, tmp_path_factory):
    """The rollup process itself at the sweet-spot limit (Fig 8a's
    367-485 s band at paper scale)."""
    _, stanzas = ds2_stanzas
    n_entries = sum(len(s.entries) for s in stanzas)
    counter = [0]

    def build_and_roll():
        counter[0] += 1
        root = tmp_path_factory.mktemp(f"f8roll{counter[0]}")
        built = build_from_stanzas(stanzas, root / "idx",
                                   BuildOptions(nthreads=NTHREADS))
        return rollup(built.index, limit=max(4, n_entries // 259),
                      nthreads=NTHREADS)

    stats = benchmark.pedantic(build_and_roll, rounds=2, iterations=1)
    assert stats.rolled > 0


def bench_fig8_query_nonrolled(benchmark, ds2_index):
    """The Fig 8a simple query on the NONE (un-rolled) index."""
    q = GUFIQuery(ds2_index.index, nthreads=NTHREADS)
    result = benchmark(lambda: q.run(SIMPLE_QUERY))
    assert len(result.rows) > 0


def bench_fig8_query_rolled(benchmark, ds2_stanzas, tmp_path_factory):
    """The same query on a sweet-spot-rolled index — must beat NONE."""
    _, stanzas = ds2_stanzas
    n_entries = sum(len(s.entries) for s in stanzas)
    root = tmp_path_factory.mktemp("f8rolled")
    built = build_from_stanzas(stanzas, root / "idx",
                               BuildOptions(nthreads=NTHREADS))
    rollup(built.index, limit=max(4, n_entries // 259), nthreads=NTHREADS)
    q = GUFIQuery(built.index, nthreads=NTHREADS)
    result = benchmark(lambda: q.run(SIMPLE_QUERY))
    assert len(result.rows) > 0
