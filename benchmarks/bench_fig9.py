"""Figure 9 — extended-attribute query performance.

9a: sentinel-xattr search on trees with 25/50/100% xattr coverage —
GUFI's sharded xattr views versus XFS ``find | xargs getfattr`` and
the pre-generated-file-list variant (cost ∝ total files either way,
because POSIX cannot filter by attribute presence).
9b: scan (sentinel in every tagged file) versus stab (unique needle).
"""

from __future__ import annotations

import pytest

from repro.core.build import BuildOptions, dir2index
from repro.core.query import GUFIQuery, QuerySpec
from repro.gen.datasets import dataset2
from repro.gen.namespace import apply_xattrs
from repro.harness import fig9

from _bench_helpers import DS2_SCALE, NTHREADS, save_table

SCAN_SPEC = QuerySpec(
    E="SELECT rpath(dname, d_isroot, name), exattrs FROM xpentries "
    "WHERE exattrs LIKE '%user.ext%'",
    xattrs=True,
)
STAB_SPEC = QuerySpec(
    E="SELECT rpath(dname, d_isroot, name), exattrs FROM xpentries "
    "WHERE exattrs LIKE '%needle%'",
    xattrs=True,
)


def bench_fig9_table(benchmark):
    table = benchmark.pedantic(
        lambda: fig9(scale=DS2_SCALE, coverages=(0.25, 0.5, 1.0),
                     nthreads=NTHREADS),
        rounds=1, iterations=1,
    )
    save_table("fig9", table)
    xfs = table.column("xfs find+getfattr (s)")
    gufi = table.column("gufi scan modelled (s)")
    assert all(g < x for g, x in zip(gufi, xfs))


@pytest.fixture(scope="module")
def tagged_index(tmp_path_factory):
    """Tree-1-style namespace (25% coverage) with xattr side dbs."""
    ns = dataset2(scale=DS2_SCALE, seed=22)
    tagged, needle = apply_xattrs(ns, 0.25)
    root = tmp_path_factory.mktemp("f9idx")
    built = dir2index(ns.tree, root / "idx",
                      opts=BuildOptions(nthreads=NTHREADS))
    return built.index, tagged, needle


def bench_fig9_gufi_scan(benchmark, tagged_index):
    index, tagged, _ = tagged_index
    q = GUFIQuery(index, nthreads=NTHREADS)
    result = benchmark(lambda: q.run(SCAN_SPEC))
    assert len(result.rows) == len(tagged)


def bench_fig9_gufi_stab(benchmark, tagged_index):
    index, _, needle = tagged_index
    q = GUFIQuery(index, nthreads=NTHREADS)
    result = benchmark(lambda: q.run(STAB_SPEC))
    assert [r[0] for r in result.rows] == [needle]
