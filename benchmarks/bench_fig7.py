"""Figure 7 — SSD utilisation versus GUFI thread count.

The query engine's traced read volume is pushed through the paper's
SSD/host throughput models at every thread count, reproducing the
saturation curve (one SSD saturates near 112 threads; two SSDs reach
the ~80-95% band; four SSDs stay host-limited).
"""

from __future__ import annotations

from repro.core.query import GUFIQuery, QuerySpec
from repro.harness import fig7
from repro.sim.blktrace import IOTracer

from _bench_helpers import NTHREADS, save_table


def bench_fig7_table(benchmark):
    table = benchmark.pedantic(
        lambda: fig7(scale=0.002), rounds=1, iterations=1
    )
    save_table("fig7", table)
    # render the figure itself (throughput curves per host config)
    from repro.harness.results import ascii_chart
    from _bench_helpers import RESULTS_DIR

    threads = table.column("threads")
    series = {
        label: list(zip(threads, table.column(f"GB/s ({n} SSD)")))
        for n, label in ((1, "1 SSD"), (2, "2 SSD"), (4, "4 SSD"))
    }
    chart = ascii_chart(
        "Fig 7: modelled read bandwidth vs thread count (GB/s)",
        series, logx=True,
    )
    (RESULTS_DIR / "fig7_chart.txt").write_text(chart + "\n")
    print(); print(chart)
    util1 = dict(zip(table.column("threads"), table.column("util% (1 SSD)")))
    util4 = dict(zip(table.column("threads"), table.column("util% (4 SSD)")))
    assert util1[112] > 95  # saturation at ~112 threads (paper Fig 7a)
    assert util4[896] < 60  # host bottleneck with 4 SSDs (paper Fig 7b)


def bench_fig7_traced_scan_query(benchmark, ds2_index):
    """The traced full-touch query Fig 7 drives (``gufi_query -E
    "SELECT uid FROM entries"``) — wall-clock of the real engine."""
    tracer = IOTracer()
    q = GUFIQuery(ds2_index.index, nthreads=NTHREADS, tracer=tracer)

    def run():
        tracer.reset()
        return q.run(QuerySpec(E="SELECT uid FROM entries"))

    result = benchmark(run)
    assert result.dirs_visited == ds2_index.dirs_created
    assert tracer.total_bytes > 0
